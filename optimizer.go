package mqo

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"mqo/internal/algebra"
	"mqo/internal/cache"
	"mqo/internal/catalog"
	"mqo/internal/core"
	"mqo/internal/cost"
	"mqo/internal/dag"
	"mqo/internal/exec"
	"mqo/internal/obs"
	"mqo/internal/physical"
	"mqo/internal/server"
	"mqo/internal/sql"
	"mqo/internal/storage"
)

// Optimizer is a session handle: it owns a catalog, a cost model, an
// optional plan cache and an optional attached database, and turns SQL text
// or algebra queries into optimized — and, with a database, executed —
// plans.
//
// An Optimizer is safe for concurrent use by multiple goroutines. Each
// optimization call builds its own AND-OR DAG, so no two calls ever share
// a DAG's mutable costing state; the plan cache is sharded and
// mutex-guarded per shard, and concurrent plan executions proceed in
// parallel on the attached database, each in a private temp-table
// namespace. Plan-cache hits hand each caller a defensive copy whose
// shared plan nodes must be treated as read-only.
type Optimizer struct {
	cat   *catalog.Catalog
	model cost.Model
	opts  core.Options
	db    *storage.DB
	cache *planCacheSet

	// planCacheCap and shardCount are recorded by options and realized at
	// the end of Open, so WithPlanCache and WithShards compose in any order.
	planCacheCap int
	shardCount   int

	// Cross-batch result cache (WithResultCache): a row-backed store of
	// spooled intermediate results consulted around every executed batch.
	rcMu         sync.Mutex
	rcache       *cache.Manager
	rcBudget     int64
	rcWarmBudget int64

	// Micro-batching service behind Submit, started on first use.
	svcCfg  BatchingOptions
	svcOnce sync.Once
	svc     *Service
	svcErr  error
}

// Option configures an Optimizer at Open time.
type Option func(*Optimizer)

// WithModel replaces the default cost model.
func WithModel(m Model) Option { return func(o *Optimizer) { o.model = m } }

// WithDB attaches a database, enabling Run. The Optimizer takes ownership
// of plan execution on the database: callers must not execute plans on it
// concurrently through other means.
func WithDB(db *DB) Option { return func(o *Optimizer) { o.db = db } }

// WithPlanCache enables a fingerprint-keyed LRU cache of optimized plans
// holding up to n batches. Batches whose queries have equal canonical
// fingerprints (same logical expressions, in order) optimized with the
// same algorithm share one cached Result. With WithShards the cache is
// split into independently locked LRU shards by key hash.
func WithPlanCache(n int) Option { return func(o *Optimizer) { o.planCacheCap = n } }

// WithShards shards the serving hot path n ways: the plan-cache LRU and
// the cross-batch result cache split into n independently locked shards
// (by batch-key and expression-fingerprint hash respectively), so
// concurrent workers stop contending on single locks. The default, 1,
// keeps the exact unsharded semantics. Plans, rows and table names are
// identical at every shard count — only lock contention changes — though
// eviction order may differ once per-shard budgets bind.
func WithShards(n int) Option { return func(o *Optimizer) { o.shardCount = n } }

// WithResultCache enables the cross-batch transient result cache (the
// paper's §8 caching direction, made real): up to ramBytes of executed
// intermediate results are spooled into the database's cache namespace and
// survive across batches, so repeated subexpressions in later Run/Submit
// traffic are answered by scanning a cache table instead of being
// recomputed. Requires WithDB. Admission competes on value density
// (estimated recomputation cost saved per real stored byte), hits
// reinforce an entry's value, and eviction drops the weakest entries'
// spooled tables from storage. Optimize-only calls (OptimizeSQL,
// OptimizeBatch) never consult the result cache — it is an execution-layer
// store.
//
// warmBytes > 0 adds a disk-backed warm tier below the RAM tier: instead
// of dropping a value-dense entry, RAM eviction demotes it to a heap file
// on disk, where it keeps answering hits (priced at the cost model's
// higher WarmReadS per-page constant) until warm-tier eviction or
// promotion back to RAM. warmBytes = 0 keeps the single-tier behavior.
func WithResultCache(ramBytes, warmBytes int64) Option {
	return func(o *Optimizer) { o.rcBudget, o.rcWarmBudget = ramBytes, warmBytes }
}

// WithSpaceBudget bounds the total size of materialized results chosen by
// Greedy to the given number of bytes (the paper's §8 extension).
func WithSpaceBudget(bytes int64) Option {
	return func(o *Optimizer) { o.opts.Greedy.SpaceBudgetBytes = bytes }
}

// WithParallelism sets the worker count of the optimizer's search
// substrate: Greedy's benefit-evaluation waves (each worker on its own
// cost-view overlay of the batch's DAG), Volcano-RU's forward/reverse
// order passes, and the sharability analysis. The default, 0, auto-tunes
// each phase — serial for small batches where the fan-out cannot amortize,
// fanned out past the measured crossover; 1 forces strictly serial
// execution; larger values force that many workers. The chosen plan, cost
// and materialized set are identical at every setting — only optimization
// wall-clock changes — so plans stay reproducible.
func WithParallelism(workers int) Option {
	return func(o *Optimizer) { o.opts.Parallelism = workers }
}

// WithMultiPick lets Greedy commit up to k conflict-free candidates per
// benefit-evaluation wave (speculative multi-pick) instead of one. Beyond
// the first pick of a wave, only candidates provably unaffected by the
// wave's earlier picks — non-conflicting cost cones on the DAG — are
// committed, so the materialized set, plan and total cost are identical
// to single-pick at every k; larger k only skips the evaluation waves
// that would have re-derived unchanged benefits. 0 or 1 is classic
// single-pick.
func WithMultiPick(k int) Option {
	return func(o *Optimizer) { o.opts.MultiPick = k }
}

// WithOptions replaces the full optimization options (ablation switches,
// RU order). Later options still override individual fields.
func WithOptions(opt Options) Option { return func(o *Optimizer) { o.opts = opt } }

// WithBatching tunes the micro-batching service behind Optimizer.Submit
// (window size, max wait, workers, algorithm). It does not start the
// service; the first Submit does.
func WithBatching(cfg BatchingOptions) Option { return func(o *Optimizer) { o.svcCfg = cfg } }

// Open creates an optimizer session over the given catalog.
func Open(cat *Catalog, opts ...Option) (*Optimizer, error) {
	if cat == nil {
		return nil, fmt.Errorf("mqo: Open: nil catalog")
	}
	o := &Optimizer{cat: cat, model: cost.DefaultModel()}
	for _, opt := range opts {
		opt(o)
	}
	if o.shardCount < 1 {
		o.shardCount = 1
	}
	if o.planCacheCap > 0 {
		o.cache = newPlanCacheSet(o.planCacheCap, o.shardCount)
	}
	if o.rcBudget > 0 {
		if err := o.ensureResultCache(o.rcBudget, o.rcWarmBudget); err != nil {
			return nil, err
		}
	}
	return o, nil
}

// setShards re-shards the serving-path caches before traffic (Serve with
// BatchingOptions.Shards). The plan cache restarts empty at the new shard
// count; an existing result-cache store keeps its sharding (its spooled
// tables are live), so set shards before enabling the result cache.
func (o *Optimizer) setShards(n int) {
	if n < 1 {
		n = 1
	}
	if n == o.shardCount {
		return
	}
	o.shardCount = n
	if o.planCacheCap > 0 {
		o.cache = newPlanCacheSet(o.planCacheCap, n)
	}
}

// ensureResultCache creates the session result-cache store on first use
// (Open with WithResultCache, or Serve with ResultCacheBytes set), or
// resizes an existing store to the requested budgets — a smaller budget
// evicts (and, RAM side, demotes) immediately.
func (o *Optimizer) ensureResultCache(ramBytes, warmBytes int64) error {
	if o.db == nil {
		return fmt.Errorf("mqo: WithResultCache requires an attached database (use WithDB)")
	}
	o.rcMu.Lock()
	defer o.rcMu.Unlock()
	if o.rcache == nil {
		shards := o.shardCount
		if shards < 1 {
			shards = 1
		}
		o.rcache = cache.NewStoreTiered(o.db, o.model, ramBytes, warmBytes, shards)
	} else if o.rcache.Budget() != ramBytes || o.rcache.WarmBudget() != warmBytes {
		o.rcache.SetBudgets(ramBytes, warmBytes)
	}
	return nil
}

// Close releases the session's serving-side resources: the micro-batching
// service (if Submit started one) stops accepting work, in-flight warm-tier
// promotions drain, and the result cache drops every spooled table — RAM
// and warm — removing the warm tier's spill directory from disk. The
// Optimizer remains usable for optimize-only (and plain Run) calls
// afterwards; a later Serve with ResultCacheBytes set re-creates the store.
func (o *Optimizer) Close() {
	o.svcOnce.Do(func() {})
	if o.svc != nil {
		o.svc.Close()
	}
	o.rcMu.Lock()
	rc := o.rcache
	o.rcache = nil
	o.rcMu.Unlock()
	if rc != nil {
		rc.Close()
	}
}

// resultCache returns the session's result-cache store, or nil.
func (o *Optimizer) resultCache() *cache.Manager {
	o.rcMu.Lock()
	defer o.rcMu.Unlock()
	return o.rcache
}

// ResultCache returns the session's cross-batch result-cache store (nil
// unless WithResultCache was used).
func (o *Optimizer) ResultCache() *ResultCache { return o.resultCache() }

// ResultCacheStats returns result-cache accounting; zero-valued when the
// result cache is disabled.
func (o *Optimizer) ResultCacheStats() ResultCacheStats {
	if rc := o.resultCache(); rc != nil {
		return rc.Stats()
	}
	return ResultCacheStats{}
}

// Catalog returns the session's catalog.
func (o *Optimizer) Catalog() *Catalog { return o.cat }

// Model returns the session's cost model.
func (o *Optimizer) Model() Model { return o.model }

// DB returns the attached database, or nil.
func (o *Optimizer) DB() *DB { return o.db }

// ParseAlgorithm maps a user-facing name to an Algorithm; see the
// package-level ParseAlgorithm.
func (o *Optimizer) ParseAlgorithm(name string) (Algorithm, error) { return ParseAlgorithm(name) }

// ParseSQL parses a semicolon-separated batch of SELECT statements against
// the session catalog into algebra queries.
func (o *Optimizer) ParseSQL(sqlText string) ([]*Query, error) {
	queries, _, err := o.parseSQLTimed(sqlText)
	return queries, err
}

// parseSQLTimed is ParseSQL plus the parse/lower phase breakdown, observed
// on the registry's serving-phase histograms.
func (o *Optimizer) parseSQLTimed(sqlText string) ([]*Query, server.PhaseTimes, error) {
	queries, t, err := sql.ParseBatchTimed(o.cat, sqlText)
	pt := server.PhaseTimes{Parse: t.Parse, Lower: t.Lower}
	if err == nil {
		phaseParse.ObserveDuration(t.Parse)
		phaseLower.ObserveDuration(t.Lower)
	}
	return queries, pt, err
}

// OptimizeBatch optimizes a batch of algebra queries with the selected
// algorithm. The batch's AND-OR DAG is built fresh for the call (or the
// whole Result is served from the plan cache when enabled), so concurrent
// calls never interfere. A cancelled context aborts the optimization
// promptly with ctx.Err().
func (o *Optimizer) OptimizeBatch(ctx context.Context, queries []*Query, alg Algorithm) (*Result, error) {
	res, _, err := o.optimizeBatch(ctx, queries, alg)
	return res, err
}

// buildLogical builds the batch's pre-expansion logical DAG and query
// roots — the shared front half of every optimization path (callers that
// need canonical fingerprints before expansion insert queries here, then
// hand the DAG to core.FinishDAG).
func (o *Optimizer) buildLogical(ctx context.Context, queries []*Query) (*dag.DAG, []*dag.Group, error) {
	if len(queries) == 0 {
		return nil, nil, fmt.Errorf("mqo: empty query batch")
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	ld := dag.New(cost.Estimator{Cat: o.cat})
	roots := make([]*dag.Group, len(queries))
	for i, q := range queries {
		g, err := ld.AddQuery(q)
		if err != nil {
			return nil, nil, err
		}
		roots[i] = g
	}
	return ld, roots, nil
}

// optimizeBatch is OptimizeBatch plus a flag reporting whether the result
// was served from the plan cache (the batching service's hit accounting).
func (o *Optimizer) optimizeBatch(ctx context.Context, queries []*Query, alg Algorithm) (*Result, bool, error) {
	ld, roots, err := o.buildLogical(ctx, queries)
	if err != nil {
		return nil, false, err
	}
	var key string
	if o.cache != nil {
		key = o.batchKey(ld, roots, alg)
		if res, ok := o.cache.get(key); ok {
			return res, true, nil
		}
	}
	pd, err := core.FinishDAG(ld, o.model)
	if err != nil {
		return nil, false, err
	}
	res, err := core.Optimize(ctx, pd, alg, o.opts)
	if err != nil {
		return nil, false, err
	}
	if o.cache != nil && key != "" {
		// Hand the miss caller a defensive copy too: the stored entry is
		// what every later hit clones from, so no caller may alias it.
		o.cache.put(key, res)
		res = cloneResult(res)
	}
	return res, false, nil
}

// OptimizeSQL parses a semicolon-separated SQL batch and optimizes it; see
// OptimizeBatch.
func (o *Optimizer) OptimizeSQL(ctx context.Context, sqlText string, alg Algorithm) (*Result, error) {
	queries, err := o.ParseSQL(sqlText)
	if err != nil {
		return nil, err
	}
	return o.OptimizeBatch(ctx, queries, alg)
}

// Batch describes one optimize-then-execute request for Run. Exactly one
// of SQL and Queries must be set; setting both (or neither) is an error.
type Batch struct {
	// SQL is a semicolon-separated batch of SELECT statements, parsed
	// against the session catalog.
	SQL string
	// Queries is the batch in algebra form.
	Queries []*Query
	// Algorithm selects the optimization strategy (zero value: Volcano).
	Algorithm Algorithm
	// ParamSets drives parameterized (correlated / §8 abstracted) plans:
	// the parameter-dependent part runs once per binding set.
	ParamSets []map[string]Value
	// Analyze profiles the execution per operator: the returned
	// ExecResult.Exec.Profile holds the measured operator tree that
	// exec.FormatAnalyze renders (EXPLAIN ANALYZE).
	Analyze bool
}

// ExecResult is the outcome of Run: the optimization Result plus the
// executed rows and the measured execution profile.
type ExecResult struct {
	*Result
	// Queries holds per-query rows, in batch order.
	Queries []QueryResult
	// Exec reports measured page I/O, simulated time and wall time.
	Exec RunStats
}

// Run optimizes the batch and executes the resulting plan on the attached
// database: shared results are materialized once, every query of the batch
// runs against them, and per-query rows plus measured statistics are
// returned. Requires WithDB. Concurrent executions proceed in parallel
// over the database's sharded page layer, each in its own temp-table
// namespace; a cancelled context aborts both optimization and execution
// with ctx.Err().
func (o *Optimizer) Run(ctx context.Context, batch Batch) (*ExecResult, error) {
	if o.db == nil {
		return nil, fmt.Errorf("mqo: Run: no database attached (use WithDB)")
	}
	if len(batch.Queries) > 0 && batch.SQL != "" {
		return nil, fmt.Errorf("mqo: Run: set exactly one of Batch.SQL and Batch.Queries, not both")
	}
	queries := batch.Queries
	if len(queries) == 0 && batch.SQL != "" {
		var err error
		if queries, err = o.ParseSQL(batch.SQL); err != nil {
			return nil, err
		}
	}
	res, _, err := o.runOnDB(ctx, queries, batch.Algorithm,
		&exec.Env{ParamSets: batch.ParamSets, Profile: batch.Analyze})
	return res, err
}

// execMeta reports what the caches did for one executed batch (the
// micro-batching service's accounting).
type execMeta struct {
	// PlanCacheHit reports whether the plan came from the session plan
	// cache.
	PlanCacheHit bool
	// ResultCacheHits counts distinct spooled tables the executed plan
	// read; ResultCacheSpools counts results the batch admitted and wrote.
	ResultCacheHits   int
	ResultCacheSpools int
	// Phases is the batch's optimize/execute/spool timing breakdown
	// (parse/lower are per-query and filled in by the service).
	Phases server.PhaseTimes
}

// runOnDB optimizes one batch and executes the plan on the attached
// database — the single execution path behind Run and the micro-batching
// service. With a result cache enabled it consults the store around the
// batch: ready entries are armed on the batch DAG before the search (so
// every algorithm prices cache hits natively), the chosen plan's worthwhile
// results are spooled during execution, and the store commits — real byte
// accounting, hit reinforcement, eviction — once the run succeeds.
func (o *Optimizer) runOnDB(ctx context.Context, queries []*Query, alg Algorithm, env *exec.Env) (*ExecResult, execMeta, error) {
	meta := execMeta{}
	// Each batch gets its own trace track, so the optimizer-phase and
	// executor spans recorded below it line up per batch in the trace view.
	track := obs.NewTrack()
	ctx = obs.WithTrack(ctx, track)
	span := obs.StartSpan("batch", track, map[string]string{
		"algorithm": alg.String(), "queries": strconv.Itoa(len(queries))})
	defer span.End()

	rc := o.resultCache()
	if rc == nil {
		optStart := time.Now()
		optSpan := obs.StartSpan("optimize", track, nil)
		res, hit, err := o.optimizeBatch(ctx, queries, alg)
		optSpan.End()
		if err != nil {
			return nil, meta, err
		}
		meta.PlanCacheHit = hit
		meta.Phases.Optimize = time.Since(optStart)
		phaseOptimize.ObserveDuration(meta.Phases.Optimize)
		results, stats, err := exec.Run(ctx, o.db, o.model, res.Plan, env)
		if err != nil {
			return nil, meta, err
		}
		meta.Phases.Execute = stats.Wall
		phaseExecute.ObserveDuration(stats.Wall)
		return &ExecResult{Result: res, Queries: results, Exec: stats}, meta, nil
	}

	optStart := time.Now()
	optSpan := obs.StartSpan("optimize", track, nil)
	ld, roots, err := o.buildLogical(ctx, queries)
	if err != nil {
		optSpan.End()
		return nil, meta, err
	}
	// The plan depends on the cache state it was armed against, so the
	// plan-cache key folds in the store's ready-set generation: any
	// admission or eviction strands older plans on unreachable keys. A
	// parameterized batch's plan additionally depends on which bindings the
	// binding pre-pass armed, so the concrete binding set joins the key —
	// the same SQL with different ParamSets must not share a plan.
	var key string
	if o.cache != nil {
		key = o.batchKey(ld, roots, alg) + "|rc" + strconv.FormatInt(rc.Generation(), 10)
		if env != nil && len(env.ParamSets) > 0 {
			key += "|ps" + bindingsSignature(env.ParamSets)
		}
		if res, ok := o.cache.get(key); ok {
			if ticket, pinned := rc.PinPlan(res.Plan); pinned {
				optSpan.End()
				meta.PlanCacheHit = true
				meta.Phases.Optimize = time.Since(optStart)
				phaseOptimize.ObserveDuration(meta.Phases.Optimize)
				return o.execTicket(ctx, res, ticket, nil, env, meta)
			}
		}
	}
	pd, err := core.FinishDAG(ld, o.model)
	if err != nil {
		optSpan.End()
		return nil, meta, err
	}
	var paramSets []map[string]algebra.Value
	if env != nil {
		paramSets = env.ParamSets
	}
	ticket := rc.Arm(pd, paramSets)
	res, err := core.Optimize(ctx, pd, alg, o.opts)
	optSpan.End()
	if err != nil {
		ticket.Abort()
		return nil, meta, err
	}
	meta.Phases.Optimize = time.Since(optStart)
	phaseOptimize.ObserveDuration(meta.Phases.Optimize)
	spoolStart := time.Now()
	spools := ticket.PlanSpools(res.Plan)
	meta.Phases.Spool = time.Since(spoolStart)
	if o.cache != nil && key != "" && len(spools) == 0 && len(ticket.BindingSpools()) == 0 {
		// Steady state (nothing newly spooled): the plan is reusable at
		// this generation. Spooling batches bump the generation on commit,
		// so caching their plans would only strand dead entries.
		o.cache.put(key, res)
		res = cloneResult(res)
	}
	return o.execTicket(ctx, res, ticket, spools, env, meta)
}

// execTicket executes an optimized plan under its result-cache ticket,
// committing on success and aborting on failure.
func (o *Optimizer) execTicket(ctx context.Context, res *Result, ticket *cache.Ticket,
	spools map[*physical.Node]string, env *exec.Env, meta execMeta) (*ExecResult, execMeta, error) {

	if env == nil {
		env = &exec.Env{}
	}
	env.Cache = &exec.CacheIO{Spools: spools, BindSpools: ticket.BindingSpools()}
	results, stats, err := exec.Run(ctx, o.db, o.model, res.Plan, env)
	if err != nil {
		ticket.Abort()
		return nil, meta, err
	}
	meta.Phases.Execute = stats.Wall
	phaseExecute.ObserveDuration(stats.Wall)
	spoolStart := time.Now()
	meta.ResultCacheHits = ticket.Commit()
	meta.ResultCacheSpools = len(spools)
	for _, binds := range ticket.BindingSpools() {
		meta.ResultCacheSpools += len(binds)
	}
	meta.Phases.Spool += time.Since(spoolStart)
	phaseSpool.ObserveDuration(meta.Phases.Spool)
	return &ExecResult{Result: res, Queries: results, Exec: stats}, meta, nil
}

// Submit enqueues one SELECT for micro-batched execution on the session's
// batching service, starting the service on first use (tune it with
// WithBatching). Unlike Run — which executes the caller's batch alone —
// Submit coalesces concurrent callers' queries into one MQO batch, so
// independent requests share work. Requires WithDB. Blocks until the
// batch has run or ctx is done.
func (o *Optimizer) Submit(ctx context.Context, sqlText string) (*Answer, error) {
	o.svcOnce.Do(func() { o.svc, o.svcErr = Serve(o, o.svcCfg) })
	if o.svcErr != nil {
		return nil, o.svcErr
	}
	return o.svc.Submit(ctx, sqlText)
}

// CacheStats returns plan-cache accounting; zero-valued when the plan
// cache is disabled.
func (o *Optimizer) CacheStats() CacheStats {
	if o.cache == nil {
		return CacheStats{}
	}
	return o.cache.stats()
}

// batchKey derives the plan-cache key of a batch: the canonical logical
// fingerprints of the query roots (computed on the not-yet-expanded DAG —
// reusing the machinery that lets the §8 result cache match expressions
// across queries) combined with the algorithm and options.
func (o *Optimizer) batchKey(ld *dag.DAG, roots []*dag.Group, alg Algorithm) string {
	fps := dag.CanonicalFingerprints(ld)
	parts := make([]string, len(roots))
	for i, g := range roots {
		parts[i] = fps[g.Find()]
	}
	return fmt.Sprintf("%v|%+v|%s", alg, o.opts, strings.Join(parts, ";"))
}

// bindingsSignature renders a batch's parameter bindings for the
// plan-cache key, preserving ParamSets order (the executed row order
// depends on it).
func bindingsSignature(sets []map[string]algebra.Value) string {
	parts := make([]string, len(sets))
	for i, ps := range sets {
		parts[i] = algebra.BindingKey(ps)
	}
	return strings.Join(parts, ";")
}
