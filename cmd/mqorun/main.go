// Command mqorun optimizes a workload with a chosen algorithm, executes the
// plan on generated data, and reports plan cost, measured I/O and result
// sizes. The workload is either one of the built-in benchmarks or an ad hoc
// SQL batch over the TPC-D schema.
//
//	mqorun -workload bq -n 3 -alg greedy -sf 0.002
//	mqorun -workload cq -n 2 -alg volcano-ru
//	mqorun -sql "SELECT nname, SUM(lprice) AS r FROM lineitem, supplier, nation \
//	             WHERE lsk = sk AND snk = nk GROUP BY nname"
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mqo/internal/algebra"
	"mqo/internal/catalog"
	"mqo/internal/core"
	"mqo/internal/cost"
	"mqo/internal/exec"
	"mqo/internal/psp"
	"mqo/internal/sql"
	"mqo/internal/storage"
	"mqo/internal/tpcd"
)

func main() {
	workload := flag.String("workload", "bq", "workload: bq|cq|q11|q15|q2d")
	n := flag.Int("n", 2, "composite size for bq (1-5) / cq (1-5)")
	algName := flag.String("alg", "greedy", "algorithm: volcano|volcano-sh|volcano-ru|greedy")
	sf := flag.Float64("sf", 0.002, "data scale factor for execution")
	pool := flag.Int("pool", 1024, "buffer pool pages")
	sqlSrc := flag.String("sql", "", "semicolon-separated SELECT batch over the TPC-D schema (overrides -workload)")
	flag.Parse()

	alg, err := parseAlg(*algName)
	if err != nil {
		fail(err)
	}

	db := storage.NewDB(*pool)
	var (
		queries []*algebra.Tree
		cat     *catalog.Catalog
	)
	if *sqlSrc != "" {
		cat = tpcd.Catalog(*sf)
		queries, err = sql.ParseBatch(cat, *sqlSrc)
		if err == nil {
			err = tpcd.LoadDB(db, *sf, 1)
		}
	} else {
		queries, cat, err = namedWorkload(*workload, *n, *sf, db)
	}
	if err != nil {
		fail(err)
	}

	model := cost.DefaultModel()
	pd, err := core.BuildDAG(cat, model, queries)
	if err != nil {
		fail(err)
	}
	res, err := core.Optimize(pd, alg, core.Options{})
	if err != nil {
		fail(err)
	}
	fmt.Printf("queries=%d algorithm=%v\n", len(queries), alg)
	fmt.Printf("estimated cost: %.2f s   optimization time: %v   materialized nodes: %d\n",
		res.Cost, res.Stats.OptTime, len(res.Materialized))
	fmt.Println(res.Plan)

	results, stats, err := exec.Run(db, model, res.Plan, nil)
	if err != nil {
		fail(err)
	}
	fmt.Printf("executed: %d queries, %d rows total, reads=%d writes=%d, simulated time %.3f s, wall %v\n",
		len(results), stats.RowsOut, stats.IO.Reads, stats.IO.Writes, stats.SimTime, stats.Wall)
	for i, qr := range results {
		fmt.Printf("  query %d: %d rows\n", i, len(qr.Rows))
	}
}

// namedWorkload loads one of the built-in workloads into db and returns
// its queries and catalog.
func namedWorkload(workload string, n int, sf float64, db *storage.DB) ([]*algebra.Tree, *catalog.Catalog, error) {
	switch workload {
	case "bq":
		return tpcd.BatchQueries(n), tpcd.Catalog(sf), tpcd.LoadDB(db, sf, 1)
	case "q11":
		return []*algebra.Tree{tpcd.Q11()}, tpcd.Catalog(sf), tpcd.LoadDB(db, sf, 1)
	case "q15":
		return []*algebra.Tree{tpcd.Q15()}, tpcd.Catalog(sf), tpcd.LoadDB(db, sf, 1)
	case "q2d":
		return tpcd.Q2D(), tpcd.Catalog(sf), tpcd.LoadDB(db, sf, 1)
	case "cq":
		return psp.CQ(n), psp.Catalog(sf), psp.LoadDB(db, sf, 1)
	}
	return nil, nil, fmt.Errorf("unknown workload %q", workload)
}

func parseAlg(s string) (core.Algorithm, error) {
	switch strings.ToLower(s) {
	case "volcano":
		return core.Volcano, nil
	case "volcano-sh", "sh":
		return core.VolcanoSH, nil
	case "volcano-ru", "ru":
		return core.VolcanoRU, nil
	case "greedy":
		return core.Greedy, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q", s)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "mqorun: %v\n", err)
	os.Exit(1)
}
