// Command mqorun optimizes a workload with a chosen algorithm, executes the
// plan on generated data, and reports plan cost, measured I/O and result
// sizes. The workload is either one of the built-in benchmarks or an ad hoc
// SQL batch over the TPC-D schema.
//
//	mqorun -workload bq -n 3 -alg greedy -sf 0.002
//	mqorun -workload cq -n 2 -alg volcano-ru
//	mqorun -sql "SELECT nname, SUM(lprice) AS r FROM lineitem, supplier, nation \
//	             WHERE lsk = sk AND snk = nk GROUP BY nname"
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"mqo"
	"mqo/internal/psp"
	"mqo/internal/ssb"
	"mqo/internal/tpcd"
)

func main() {
	workload := flag.String("workload", "bq", "workload: bq|cq|q11|q15|q2d|ssb|ssbdrill")
	n := flag.Int("n", 2, "composite size for bq (1-5) / cq (1-5), flight number for ssb/ssbdrill (1-4)")
	algName := flag.String("alg", "greedy", "algorithm: volcano|volcano-sh|volcano-ru|greedy")
	sf := flag.Float64("sf", 0.002, "data scale factor for execution")
	pool := flag.Int("pool", 1024, "buffer pool pages")
	parallel := flag.Int("parallel", 0, "search-substrate workers (0: auto-tune per phase, 1: serial, n: fan out; plan is identical at every setting)")
	multipick := flag.Int("multipick", 1, "max greedy picks per evaluation wave (speculative multi-pick; plan is identical at every k)")
	resCache := flag.Int64("resultcache", 0, "cross-batch result-cache RAM budget in bytes (0 disables)")
	resCacheWarm := flag.Int64("resultcache-warm", 0, "disk-backed warm-tier budget in bytes (0 disables tiering)")
	repeat := flag.Int("repeat", 1, "run the batch this many times (with -resultcache, later passes hit the cache)")
	sqlSrc := flag.String("sql", "", "semicolon-separated SELECT batch over the TPC-D schema (overrides -workload)")
	analyze := flag.Bool("analyze", false, "EXPLAIN ANALYZE: print per-operator measured vs. estimated stats after execution")
	flag.Parse()

	alg, err := mqo.ParseAlgorithm(*algName)
	if err != nil {
		fail(err)
	}

	db := mqo.NewDB(*pool)
	sessionOpts := []mqo.Option{mqo.WithDB(db), mqo.WithParallelism(*parallel), mqo.WithMultiPick(*multipick)}
	if *resCache > 0 {
		sessionOpts = append(sessionOpts, mqo.WithResultCache(*resCache, *resCacheWarm))
	}
	var (
		batch = mqo.Batch{Algorithm: alg, Analyze: *analyze}
		opt   *mqo.Optimizer
	)
	if *sqlSrc != "" {
		// Parse before generating data, so bad SQL fails fast.
		opt, err = mqo.Open(tpcd.Catalog(*sf), sessionOpts...)
		if err == nil {
			batch.Queries, err = opt.ParseSQL(*sqlSrc)
		}
		if err == nil {
			err = tpcd.LoadDB(db, *sf, 1)
		}
	} else {
		var cat *mqo.Catalog
		batch.Queries, cat, err = namedWorkload(*workload, *n, *sf, db)
		if err == nil {
			opt, err = mqo.Open(cat, sessionOpts...)
		}
	}
	if err != nil {
		fail(err)
	}
	if *repeat < 1 {
		*repeat = 1
	}
	for pass := 1; pass <= *repeat; pass++ {
		res, err := opt.Run(context.Background(), batch)
		if err != nil {
			fail(err)
		}
		if *repeat > 1 {
			fmt.Printf("== pass %d/%d ==\n", pass, *repeat)
		}
		fmt.Printf("queries=%d algorithm=%v\n", len(res.Queries), alg)
		fmt.Printf("estimated cost: %.2f s   optimization time: %v   materialized nodes: %d\n",
			res.Cost, res.Stats.OptTime, len(res.Materialized))
		fmt.Println(res.Plan)

		fmt.Printf("executed: %d queries, %d rows total, reads=%d writes=%d, simulated time %.3f s, wall %v\n",
			len(res.Queries), res.Exec.RowsOut, res.Exec.IO.Reads, res.Exec.IO.Writes, res.Exec.SimTime, res.Exec.Wall)
		for i, qr := range res.Queries {
			fmt.Printf("  query %d: %d rows\n", i, len(qr.Rows))
		}
		if *analyze {
			fmt.Println("\n-- EXPLAIN ANALYZE --")
			fmt.Print(mqo.FormatAnalyze(res.Exec))
		}
	}
	if *resCache > 0 {
		st := opt.ResultCacheStats()
		fmt.Printf("result cache: %d entries, %d/%d bytes, hit-rate %.0f%%, admitted %d, evicted %d, est saved %.2f s\n",
			st.Entries, st.UsedBytes, st.BudgetBytes, 100*st.HitRate(), st.Admissions, st.Evictions, st.SavedCostEst)
		if *resCacheWarm > 0 {
			fmt.Printf("warm tier: %d entries, %d/%d bytes, warm hits %d, demotions %d, promotions %d\n",
				st.WarmEntries, st.WarmUsedBytes, st.WarmBudgetBytes, st.WarmHits, st.Demotions, st.Promotions)
		}
		opt.Close()
	}
}

// namedWorkload loads one of the built-in workloads into db and returns
// its queries and catalog.
func namedWorkload(workload string, n int, sf float64, db *mqo.DB) ([]*mqo.Query, *mqo.Catalog, error) {
	switch workload {
	case "bq":
		return tpcd.BatchQueries(n), tpcd.Catalog(sf), tpcd.LoadDB(db, sf, 1)
	case "q11":
		return []*mqo.Query{tpcd.Q11()}, tpcd.Catalog(sf), tpcd.LoadDB(db, sf, 1)
	case "q15":
		return []*mqo.Query{tpcd.Q15()}, tpcd.Catalog(sf), tpcd.LoadDB(db, sf, 1)
	case "q2d":
		return tpcd.Q2D(), tpcd.Catalog(sf), tpcd.LoadDB(db, sf, 1)
	case "cq":
		return psp.CQ(n), psp.Catalog(sf), psp.LoadDB(db, sf, 1)
	case "ssb":
		return ssb.Flight(n), ssb.Catalog(sf), ssb.LoadDB(db, sf, 1)
	case "ssbdrill":
		return ssb.DrillDownBatch(n, ssb.MaxDrillSteps), ssb.Catalog(sf), ssb.LoadDB(db, sf, 1)
	}
	return nil, nil, fmt.Errorf("unknown workload %q", workload)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "mqorun: %v\n", err)
	os.Exit(1)
}
