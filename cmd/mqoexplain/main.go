// Command mqoexplain dumps the expanded AND-OR DAG, sharability degrees and
// the chosen plan for a workload, for inspection and debugging.
//
//	mqoexplain -workload q11
//	mqoexplain -workload bq -n 2 -alg volcano-sh -dag
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"mqo"
	"mqo/internal/algebra"
	"mqo/internal/catalog"
	"mqo/internal/core"
	"mqo/internal/cost"
	"mqo/internal/psp"
	"mqo/internal/ssb"
	"mqo/internal/tpcd"
)

func main() {
	workload := flag.String("workload", "q11", "workload: bq|cq|q11|q15|q2|q2d|q2ni|ssb|ssbdrill")
	n := flag.Int("n", 2, "composite size for bq/cq, flight number for ssb/ssbdrill")
	algName := flag.String("alg", "greedy", "algorithm: volcano|volcano-sh|volcano-ru|greedy")
	showDAG := flag.Bool("dag", false, "dump the expanded logical DAG")
	flag.Parse()

	var (
		queries []*algebra.Tree
		cat     *catalog.Catalog
	)
	switch *workload {
	case "bq":
		queries, cat = tpcd.BatchQueries(*n), tpcd.Catalog(1)
	case "cq":
		queries, cat = psp.CQ(*n), psp.Catalog(1)
	case "q11":
		queries, cat = []*algebra.Tree{tpcd.Q11()}, tpcd.Catalog(1)
	case "q15":
		queries, cat = []*algebra.Tree{tpcd.Q15()}, tpcd.Catalog(1)
	case "q2":
		queries, cat = tpcd.Q2(1), tpcd.Catalog(1)
	case "q2d":
		queries, cat = tpcd.Q2D(), tpcd.Catalog(1)
	case "q2ni":
		queries, cat = tpcd.Q2NI(1), tpcd.Catalog(1)
	case "ssb":
		queries, cat = ssb.Flight(*n), ssb.Catalog(1)
	case "ssbdrill":
		queries, cat = ssb.DrillDownBatch(*n, ssb.MaxDrillSteps), ssb.Catalog(1)
	default:
		fmt.Fprintf(os.Stderr, "mqoexplain: unknown workload %q\n", *workload)
		os.Exit(2)
	}

	alg, err := mqo.ParseAlgorithm(*algName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mqoexplain: %v\n", err)
		os.Exit(2)
	}

	pd, err := core.BuildDAG(cat, cost.DefaultModel(), queries)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mqoexplain: %v\n", err)
		os.Exit(1)
	}
	degrees := core.ComputeSharability(pd)

	fmt.Printf("queries: %d   logical groups: %d   operation nodes: %d   physical nodes: %d\n",
		len(queries), len(pd.L.LiveGroups()), pd.L.NumExprs(), len(pd.Nodes))

	if *showDAG {
		fmt.Println("\n-- expanded logical DAG --")
		for _, g := range pd.L.LiveGroups() {
			shar := ""
			if degrees[g] > 1 {
				shar = fmt.Sprintf("  [sharable, degree %.0f]", degrees[g])
			}
			fmt.Printf("group %d (rows %.0f)%s\n", g.ID, g.Rel.Rows, shar)
			for _, e := range g.Exprs {
				children := make([]string, len(e.Children))
				for i, c := range e.Children {
					children[i] = fmt.Sprint(c.Find().ID)
				}
				tag := ""
				if e.Subsumption {
					tag = "  (subsumption)"
				}
				fmt.Printf("  %s(%s)%s\n", e.Op, strings.Join(children, ","), tag)
			}
		}
	}

	res, err := core.Optimize(context.Background(), pd, alg, core.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mqoexplain: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\n-- %v plan (estimated cost %.2f s, optimization %v) --\n", alg, res.Cost, res.Stats.OptTime)
	fmt.Print(res.Plan)
	if len(res.Materialized) > 0 {
		fmt.Println("\nmaterialized results:")
		for _, m := range res.Materialized {
			fmt.Printf("  node %d prop=%s rows=%.0f cost=%.2f matcost=%.2f reuse=%.2f\n",
				m.ID, m.Prop, m.LG.Rel.Rows, m.Cost, m.MatCost, m.ReuseSeq)
		}
	}
}
