// Command mqoexplain dumps the expanded AND-OR DAG, sharability degrees and
// the chosen plan for a workload, for inspection and debugging.
//
//	mqoexplain -workload q11
//	mqoexplain -workload bq -n 2 -alg volcano-sh -dag
//	mqoexplain -workload bq -n 2 -analyze -sf 0.002
//
// With -analyze the workload is also executed on generated data and the
// plan is re-printed EXPLAIN ANALYZE style: per operator, the optimizer's
// estimated cost and cardinality against the measured rows, pages and wall
// time.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"mqo"
	"mqo/internal/algebra"
	"mqo/internal/catalog"
	"mqo/internal/core"
	"mqo/internal/cost"
	"mqo/internal/psp"
	"mqo/internal/ssb"
	"mqo/internal/tpcd"
)

func main() {
	workload := flag.String("workload", "q11", "workload: bq|cq|q11|q15|q2|q2d|q2ni|ssb|ssbdrill")
	n := flag.Int("n", 2, "composite size for bq/cq, flight number for ssb/ssbdrill")
	algName := flag.String("alg", "greedy", "algorithm: volcano|volcano-sh|volcano-ru|greedy")
	showDAG := flag.Bool("dag", false, "dump the expanded logical DAG")
	analyze := flag.Bool("analyze", false, "execute on generated data and print EXPLAIN ANALYZE")
	sf := flag.Float64("sf", 0.002, "data scale factor for -analyze execution")
	pool := flag.Int("pool", 1024, "buffer pool pages for -analyze execution")
	flag.Parse()

	var (
		queries []*algebra.Tree
		cat     *catalog.Catalog
		load    func(*mqo.DB, float64, int64) error
	)
	switch *workload {
	case "bq":
		queries, cat, load = tpcd.BatchQueries(*n), tpcd.Catalog(1), tpcd.LoadDB
	case "cq":
		queries, cat, load = psp.CQ(*n), psp.Catalog(1), psp.LoadDB
	case "q11":
		queries, cat, load = []*algebra.Tree{tpcd.Q11()}, tpcd.Catalog(1), tpcd.LoadDB
	case "q15":
		queries, cat, load = []*algebra.Tree{tpcd.Q15()}, tpcd.Catalog(1), tpcd.LoadDB
	case "q2":
		queries, cat, load = tpcd.Q2(1), tpcd.Catalog(1), tpcd.LoadDB
	case "q2d":
		queries, cat, load = tpcd.Q2D(), tpcd.Catalog(1), tpcd.LoadDB
	case "q2ni":
		queries, cat, load = tpcd.Q2NI(1), tpcd.Catalog(1), tpcd.LoadDB
	case "ssb":
		queries, cat, load = ssb.Flight(*n), ssb.Catalog(1), ssb.LoadDB
	case "ssbdrill":
		queries, cat, load = ssb.DrillDownBatch(*n, ssb.MaxDrillSteps), ssb.Catalog(1), ssb.LoadDB
	default:
		fmt.Fprintf(os.Stderr, "mqoexplain: unknown workload %q\n", *workload)
		os.Exit(2)
	}

	alg, err := mqo.ParseAlgorithm(*algName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mqoexplain: %v\n", err)
		os.Exit(2)
	}

	pd, err := core.BuildDAG(cat, cost.DefaultModel(), queries)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mqoexplain: %v\n", err)
		os.Exit(1)
	}
	degrees := core.ComputeSharability(pd)

	fmt.Printf("queries: %d   logical groups: %d   operation nodes: %d   physical nodes: %d\n",
		len(queries), len(pd.L.LiveGroups()), pd.L.NumExprs(), len(pd.Nodes))

	if *showDAG {
		fmt.Println("\n-- expanded logical DAG --")
		for _, g := range pd.L.LiveGroups() {
			shar := ""
			if degrees[g] > 1 {
				shar = fmt.Sprintf("  [sharable, degree %.0f]", degrees[g])
			}
			fmt.Printf("group %d (rows %.0f)%s\n", g.ID, g.Rel.Rows, shar)
			for _, e := range g.Exprs {
				children := make([]string, len(e.Children))
				for i, c := range e.Children {
					children[i] = fmt.Sprint(c.Find().ID)
				}
				tag := ""
				if e.Subsumption {
					tag = "  (subsumption)"
				}
				fmt.Printf("  %s(%s)%s\n", e.Op, strings.Join(children, ","), tag)
			}
		}
	}

	res, err := core.Optimize(context.Background(), pd, alg, core.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mqoexplain: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\n-- %v plan (estimated cost %.2f s, optimization %v) --\n", alg, res.Cost, res.Stats.OptTime)
	fmt.Print(res.Plan)
	if len(res.Materialized) > 0 {
		fmt.Println("\nmaterialized results:")
		for _, m := range res.Materialized {
			fmt.Printf("  node %d prop=%s rows=%.0f cost=%.2f matcost=%.2f reuse=%.2f\n",
				m.ID, m.Prop, m.LG.Rel.Rows, m.Cost, m.MatCost, m.ReuseSeq)
		}
	}

	if *analyze {
		// Execute the same workload on generated data: the catalog is
		// rebuilt at the execution scale factor so estimates and data agree.
		db := mqo.NewDB(*pool)
		if err := load(db, *sf, 1); err != nil {
			fmt.Fprintf(os.Stderr, "mqoexplain: loading data: %v\n", err)
			os.Exit(1)
		}
		execCat := execCatalog(*workload, *sf)
		opt, err := mqo.Open(execCat, mqo.WithDB(db))
		if err != nil {
			fmt.Fprintf(os.Stderr, "mqoexplain: %v\n", err)
			os.Exit(1)
		}
		execQueries := execWorkload(*workload, *n)
		er, err := opt.Run(context.Background(), mqo.Batch{Queries: execQueries, Algorithm: alg, Analyze: true})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mqoexplain: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\n-- EXPLAIN ANALYZE (sf=%g) --\n", *sf)
		fmt.Print(mqo.FormatAnalyze(er.Exec))
	}
}

// execCatalog rebuilds the workload's catalog at the execution scale
// factor.
func execCatalog(workload string, sf float64) *catalog.Catalog {
	switch workload {
	case "cq":
		return psp.Catalog(sf)
	case "ssb", "ssbdrill":
		return ssb.Catalog(sf)
	default:
		return tpcd.Catalog(sf)
	}
}

// execWorkload rebuilds the workload's queries for the execution pass, so
// the explain pass and the execution pass each optimize their own trees.
func execWorkload(workload string, n int) []*algebra.Tree {
	switch workload {
	case "bq":
		return tpcd.BatchQueries(n)
	case "cq":
		return psp.CQ(n)
	case "q11":
		return []*algebra.Tree{tpcd.Q11()}
	case "q15":
		return []*algebra.Tree{tpcd.Q15()}
	case "q2":
		return tpcd.Q2(1)
	case "q2d":
		return tpcd.Q2D()
	case "q2ni":
		return tpcd.Q2NI(1)
	case "ssb":
		return ssb.Flight(n)
	case "ssbdrill":
		return ssb.DrillDownBatch(n, ssb.MaxDrillSteps)
	}
	return nil
}
