// Command mqobench regenerates the paper's experiments. With no flags it
// runs every experiment; -experiment selects one of: fig6, q2ni, fig7,
// fig8, fig9, fig10, monotonicity, sharability, nosharing, memory, scale.
//
//	mqobench -experiment fig6
package main

import (
	"flag"
	"fmt"
	"os"

	"mqo/internal/bench"
)

func main() {
	which := flag.String("experiment", "all", "experiment to run (fig6|q2ni|fig7|fig8|fig9|fig10|monotonicity|sharability|nosharing|memory|scale|space|all)")
	maxCQ := flag.Int("maxcq", 3, "largest PSP composite for the ablation experiments (1-5)")
	flag.Parse()

	type runner struct {
		name string
		run  func() (*bench.Experiment, error)
	}
	runners := []runner{
		{"fig6", bench.Figure6},
		{"q2ni", bench.Q2NotIn},
		{"fig7", bench.Figure7},
		{"fig8", bench.Figure8},
		{"fig9", bench.Figure9},
		{"fig10", bench.Figure10},
		{"monotonicity", func() (*bench.Experiment, error) { return bench.AblationMonotonicity(*maxCQ) }},
		{"sharability", func() (*bench.Experiment, error) { return bench.AblationSharability(*maxCQ) }},
		{"nosharing", bench.NoSharingOverhead},
		{"memory", bench.MemorySensitivity},
		{"scale", bench.ScaleSensitivity},
		{"space", bench.SpaceBudgetCurve},
	}

	ran := false
	for _, r := range runners {
		if *which != "all" && *which != r.name {
			continue
		}
		ran = true
		exp, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mqobench: %s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Println(exp)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "mqobench: unknown experiment %q\n", *which)
		os.Exit(2)
	}
}
