// Command mqobench regenerates the paper's experiments. With no flags it
// runs every experiment; -experiment selects one of: fig6, q2ni, fig7,
// fig8, fig9, fig10, monotonicity, sharability, nosharing, memory, scale,
// space, parallel, multipick, calibrate, resultcache, ssb, observe,
// loadgen, tiered, paramcache.
// With -json the results are emitted as a machine-readable JSON array
// (one element per experiment) instead of the human-readable tables —
// the format CI archives as a benchmark trajectory.
//
//	mqobench -experiment fig6
//	mqobench -experiment fig6 -json > fig6.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"mqo/internal/bench"
)

func main() {
	which := flag.String("experiment", "all", "experiment to run (fig6|q2ni|fig7|fig8|fig9|fig10|monotonicity|sharability|nosharing|memory|scale|space|parallel|multipick|calibrate|resultcache|ssb|observe|loadgen|tiered|paramcache|all)")
	maxCQ := flag.Int("maxcq", 3, "largest PSP composite for the ablation experiments (1-5)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "worker count for the parallel what-if costing, multi-pick and calibration experiments")
	multipick := flag.Int("multipick", 4, "multi-pick width k for the multipick experiment")
	rcBudget := flag.Int64("rcbudget", 16<<20, "result-cache byte budget for the resultcache and ssb experiments")
	rcRAM := flag.Int64("rcram", 0, "tiered experiment's tight RAM budget in bytes (0: auto, smaller than the SSB working set)")
	rcWarm := flag.Int64("rcwarm", 0, "tiered experiment's warm-tier budget in bytes (0: 16 MB)")
	sf := flag.Float64("sf", 0.01, "scale factor for the ssb experiment's generated data")
	seed := flag.Int64("seed", 11, "generator seed for the ssb experiment")
	shards := flag.Int("shards", 8, "shard count for the loadgen experiment's sharded configuration")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	flag.Parse()

	type runner struct {
		name string
		run  func() (*bench.Experiment, error)
	}
	runners := []runner{
		{"fig6", bench.Figure6},
		{"q2ni", bench.Q2NotIn},
		{"fig7", bench.Figure7},
		{"fig8", bench.Figure8},
		{"fig9", bench.Figure9},
		{"fig10", bench.Figure10},
		{"monotonicity", func() (*bench.Experiment, error) { return bench.AblationMonotonicity(*maxCQ) }},
		{"sharability", func() (*bench.Experiment, error) { return bench.AblationSharability(*maxCQ) }},
		{"nosharing", bench.NoSharingOverhead},
		{"memory", bench.MemorySensitivity},
		{"scale", bench.ScaleSensitivity},
		{"space", bench.SpaceBudgetCurve},
		{"parallel", func() (*bench.Experiment, error) { return bench.ParallelSpeedup(*parallel) }},
		{"multipick", func() (*bench.Experiment, error) { return bench.MultiPickSpeedup(*parallel, *multipick) }},
		{"calibrate", func() (*bench.Experiment, error) { return bench.Calibrate(*parallel) }},
		{"resultcache", func() (*bench.Experiment, error) { return bench.ResultCacheReplay(*rcBudget) }},
		{"ssb", func() (*bench.Experiment, error) { return bench.SSB(*sf, *seed, *rcBudget) }},
		{"observe", func() (*bench.Experiment, error) { return bench.Observe(*sf, *seed) }},
		{"loadgen", func() (*bench.Experiment, error) {
			return bench.LoadGen(*sf, *seed, *rcBudget, []int{1, 2, 4, 8}, []int{1, *shards})
		}},
		{"tiered", func() (*bench.Experiment, error) {
			return bench.TieredReplay(*sf, *seed, *rcRAM, *rcWarm)
		}},
		{"paramcache", func() (*bench.Experiment, error) {
			return bench.ParamCache(*sf, *seed, *rcBudget)
		}},
	}

	var results []*bench.Experiment
	for _, r := range runners {
		if *which != "all" && *which != r.name {
			continue
		}
		exp, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mqobench: %s: %v\n", r.name, err)
			os.Exit(1)
		}
		if !*asJSON {
			fmt.Println(exp)
		}
		results = append(results, exp)
	}
	if len(results) == 0 {
		fmt.Fprintf(os.Stderr, "mqobench: unknown experiment %q\n", *which)
		os.Exit(2)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintf(os.Stderr, "mqobench: %v\n", err)
			os.Exit(1)
		}
	}
}
