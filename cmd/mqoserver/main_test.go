package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"mqo"
)

const (
	sqlRevenue = `SELECT nname, SUM(lprice) AS rev FROM lineitem, supplier, nation
		WHERE lsk = sk AND snk = nk AND lship > 2000 GROUP BY nname`
	sqlCounts = `SELECT nname, COUNT(*) AS n FROM lineitem, supplier, nation
		WHERE lsk = sk AND snk = nk AND lship > 2200 GROUP BY nname`
)

type queryReply struct {
	Columns []string        `json:"columns"`
	Rows    [][]interface{} `json:"rows"`
	Batch   struct {
		Seq         int64   `json:"seq"`
		Size        int     `json:"size"`
		Cost        float64 `json:"cost"`
		NoShareCost float64 `json:"no_share_cost"`
		CacheHit    bool    `json:"cache_hit"`
		Algorithm   string  `json:"algorithm"`
		Phases      struct {
			ParseNS    int64 `json:"parse_ns"`
			LowerNS    int64 `json:"lower_ns"`
			OptimizeNS int64 `json:"optimize_ns"`
			ExecuteNS  int64 `json:"execute_ns"`
		} `json:"phases"`
	} `json:"batch"`
}

type statsReply struct {
	Service struct {
		Submitted int64            `json:"submitted"`
		Batches   int64            `json:"batches"`
		Queries   int64            `json:"queries"`
		SizeHist  map[string]int64 `json:"size_hist"`
		CostSaved float64          `json:"cost_saved"`
	} `json:"service"`
	PlanCache    mqo.CacheStats     `json:"plan_cache"`
	PhaseSeconds map[string]float64 `json:"phase_seconds"`
}

// TestEndToEnd boots the full mqoserver stack over HTTP, fires concurrent
// clients at it, and asserts the micro-batcher actually coalesced them
// into shared MQO batches: fewer batches than clients, a batch-size
// distribution with multi-query batches, and estimated cost saved versus
// no sharing. This is the CI gate for "batched sharing occurred".
func TestEndToEnd(t *testing.T) {
	const clients = 12
	handler, svc, err := newService("tpcd", 0.002, 1, 1024, 64, mqo.BatchingOptions{
		MaxBatch: clients,
		MaxWait:  500 * time.Millisecond,
		Workers:  2,
	}, "greedy")
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(handler)
	defer ts.Close()

	// Fire concurrent clients, alternating two queries that share their
	// lineitem ⋈ supplier ⋈ nation join.
	var wg sync.WaitGroup
	replies := make([]queryReply, clients)
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sql := sqlRevenue
			if i%2 == 1 {
				sql = sqlCounts
			}
			body, _ := json.Marshal(map[string]string{"sql": sql})
			resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("client %d: status %d", i, resp.StatusCode)
				return
			}
			if err := json.NewDecoder(resp.Body).Decode(&replies[i]); err != nil {
				errs <- fmt.Errorf("client %d: decode: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every client got its own query's result, not a neighbour's.
	seqs := map[int64]bool{}
	for i, r := range replies {
		wantCol := "q.rev"
		if i%2 == 1 {
			wantCol = "q.n"
		}
		if len(r.Columns) != 2 || r.Columns[1] != wantCol {
			t.Errorf("client %d: columns %v, want [nation.nname %s]", i, r.Columns, wantCol)
		}
		if len(r.Rows) == 0 {
			t.Errorf("client %d: no rows", i)
		}
		// Coalescing is asserted in aggregate below (batch count, size
		// histogram, cost saved): a straggler client legitimately landing
		// in its own window must not fail the gate.
		if r.Batch.Algorithm != "Greedy" {
			t.Errorf("client %d: algorithm %q", i, r.Batch.Algorithm)
		}
		seqs[r.Batch.Seq] = true
	}
	if len(seqs) >= clients {
		t.Errorf("%d clients ran as %d batches: no coalescing happened", clients, len(seqs))
	}
	// Both query shapes in one window share their three-way join: the
	// shared plan must beat the no-sharing baseline.
	for i, r := range replies {
		if r.Batch.Size >= 2 && r.Batch.NoShareCost <= r.Batch.Cost {
			t.Errorf("client %d: batch of %d saved nothing (cost %.3f, no-share %.3f)",
				i, r.Batch.Size, r.Batch.Cost, r.Batch.NoShareCost)
		}
	}

	// GET /stats reports the batch-size distribution and the cost saved.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats statsReply
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Service.Submitted != clients || stats.Service.Queries != clients {
		t.Errorf("stats: submitted %d queries %d, want %d each",
			stats.Service.Submitted, stats.Service.Queries, clients)
	}
	if stats.Service.Batches >= clients {
		t.Errorf("stats: %d batches for %d clients, want coalescing", stats.Service.Batches, clients)
	}
	multi := false
	for size, n := range stats.Service.SizeHist {
		if v, _ := strconv.Atoi(size); v > 1 && n > 0 {
			multi = true
		}
	}
	if !multi {
		t.Errorf("stats: size_hist %v reports no multi-query batch", stats.Service.SizeHist)
	}
	if stats.Service.CostSaved <= 0 {
		t.Errorf("stats: cost_saved %.3f, want > 0", stats.Service.CostSaved)
	}
}

// TestSSBWorkload boots the server over generated SSB data and runs one
// flight query through the full HTTP path.
func TestSSBWorkload(t *testing.T) {
	handler, svc, err := newService("ssb", 0.002, 1, 1024, 16, mqo.BatchingOptions{
		MaxBatch: 1, MaxWait: time.Millisecond,
	}, "greedy")
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(handler)
	defer ts.Close()

	body, _ := json.Marshal(map[string]string{
		"sql": `SELECT SUM(loprice*lodisc) AS revenue FROM lineorder, date
			WHERE lodate = dk AND dyear = 1993 AND lodisc >= 1 AND lodisc <= 3 AND loqty < 25`,
	})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var r queryReply
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatal(err)
	}
	if len(r.Columns) != 1 || r.Columns[0] != "q.revenue" {
		t.Errorf("columns %v, want [q.revenue]", r.Columns)
	}
	if len(r.Rows) != 1 {
		t.Errorf("%d rows, want 1", len(r.Rows))
	}

	if _, _, err := newService("nosuch", 0.002, 1, 256, 0, mqo.BatchingOptions{
		MaxBatch: 1, MaxWait: time.Millisecond,
	}, "greedy"); err == nil {
		t.Error("unknown workload accepted")
	}
}

// TestEndToEndMetrics drives traffic through the full stack, then scrapes
// GET /metrics and asserts the output is Prometheus-parseable and covers
// every subsystem: optimizer phases, executor operators, the result cache
// and the batcher's latency quantiles. It also checks the per-phase timing
// breakdown surfaces in both the per-query batch report and GET /stats.
// The name keeps it under CI's dedicated `-run 'TestEndToEnd'` e2e step.
func TestEndToEndMetrics(t *testing.T) {
	handler, svc, err := newService("tpcd", 0.002, 1, 1024, 16, mqo.BatchingOptions{
		MaxBatch:         2,
		MaxWait:          50 * time.Millisecond,
		ResultCacheBytes: 1 << 20,
	}, "greedy")
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(handler)
	defer ts.Close()

	for _, sql := range []string{sqlRevenue, sqlCounts} {
		body, _ := json.Marshal(map[string]string{"sql": sql})
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var r queryReply
		err = json.NewDecoder(resp.Body).Decode(&r)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if r.Batch.Phases.ParseNS <= 0 || r.Batch.Phases.OptimizeNS <= 0 || r.Batch.Phases.ExecuteNS <= 0 {
			t.Errorf("batch phases %+v: want parse/optimize/execute all > 0", r.Batch.Phases)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q, want text/plain", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)

	// Required coverage: one representative series per subsystem.
	for _, want := range []string{
		`mqo_opt_phase_seconds_count{phase="sharability"}`, // optimizer phase timings
		`mqo_opt_phase_seconds_count{phase="waves"}`,
		"mqo_opt_batches_total",
		"mqo_exec_runs_total",
		"mqo_exec_operator_rows_total", // per-operator executor counters
		"mqo_resultcache_batches_total",
		"mqo_resultcache_used_bytes",
		"mqo_server_queue_wait_seconds_p50", // batcher latency quantiles
		"mqo_server_queue_wait_seconds_p99",
		"mqo_server_batch_seconds_count",
		`mqo_batch_phase_seconds_sum{phase="execute"}`,
		"# TYPE mqo_server_queue_wait_seconds histogram",
		"# TYPE mqo_server_submitted_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Prometheus text-format check: every sample line is `name[{labels}]
	// value` with a parseable float value and a legal metric name.
	nameRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?$`)
	samples := 0
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("sample line %q: want `name value`", line)
			continue
		}
		if !nameRe.MatchString(fields[0]) {
			t.Errorf("sample line %q: bad metric name", line)
		}
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			t.Errorf("sample line %q: bad value: %v", line, err)
		}
		samples++
	}
	if samples < 50 {
		t.Errorf("/metrics exposed %d samples, want a full registry", samples)
	}

	// GET /stats reports the cumulative per-phase seconds.
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats statsReply
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{"parse", "lower", "optimize", "execute", "spool"} {
		if _, ok := stats.PhaseSeconds[phase]; !ok {
			t.Errorf("stats phase_seconds missing %q (got %v)", phase, stats.PhaseSeconds)
		}
	}
	if stats.PhaseSeconds["execute"] <= 0 || stats.PhaseSeconds["optimize"] <= 0 {
		t.Errorf("stats phase_seconds %v: want optimize and execute > 0", stats.PhaseSeconds)
	}
}

// TestBadRequests covers the HTTP error paths.
func TestBadRequests(t *testing.T) {
	handler, svc, err := newService("tpcd", 0.002, 1, 256, 0, mqo.BatchingOptions{
		MaxBatch: 1, MaxWait: time.Millisecond,
	}, "volcano-ru")
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ts := httptest.NewServer(handler)
	defer ts.Close()

	for _, tc := range []struct {
		body string
		want int
	}{
		{`{"sql": "SELEC nname FROM nation"}`, http.StatusUnprocessableEntity},                            // parse error
		{`not json`, http.StatusBadRequest},                                                               // bad body
		{`{"sql": "SELECT nname FROM nation; SELECT nname FROM nation"}`, http.StatusUnprocessableEntity}, // two statements
	} {
		resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("body %q: status %d, want %d", tc.body, resp.StatusCode, tc.want)
		}
	}
}
