// Command mqoserver is a concurrent query service over generated benchmark
// data (TPC-D or SSB): an HTTP+JSON front end whose adaptive micro-batcher
// coalesces concurrent requests into multi-query-optimization batches.
//
//	mqoserver -addr :8080 -sf 0.01 -max-batch 8 -max-wait 2ms -alg greedy
//	mqoserver -workload ssb -sf 0.01 -resultcache 16777216
//
// Endpoints:
//
//	POST /query  {"sql": "SELECT ...", "timeout_ms": 0}
//	GET  /stats  batching + plan-cache accounting
//
// Concurrent POST /query requests that land in the same batching window
// are optimized and executed together; each caller receives its own rows
// plus the batch's sharing report (size, shared vs. no-sharing cost).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"mqo"
	"mqo/internal/ssb"
	"mqo/internal/tpcd"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workload  = flag.String("workload", "tpcd", "generated schema and data: tpcd|ssb")
		sf        = flag.Float64("sf", 0.01, "scale factor for the generated data")
		seed      = flag.Int64("seed", 1, "data generator seed")
		pool      = flag.Int("pool", 1024, "buffer pool size in pages")
		planCache = flag.Int("plancache", 128, "plan-cache capacity in batches (0 disables)")
		resCache  = flag.Int64("resultcache", 0, "cross-batch result-cache budget in bytes (0 disables)")
		maxBatch  = flag.Int("max-batch", 8, "flush a batching window at this many queries")
		maxWait   = flag.Duration("max-wait", 2*time.Millisecond, "max time the first query of a window waits")
		workers   = flag.Int("workers", 2, "concurrently in-flight batches")
		algName   = flag.String("alg", "greedy", "optimization algorithm (volcano|volcano-sh|volcano-ru|greedy)")
	)
	flag.Parse()

	handler, svc, err := newService(*workload, *sf, *seed, *pool, *planCache, mqo.BatchingOptions{
		MaxBatch:         *maxBatch,
		MaxWait:          *maxWait,
		Workers:          *workers,
		ResultCacheBytes: *resCache,
	}, *algName)
	if err != nil {
		log.Fatalf("mqoserver: %v", err)
	}
	defer svc.Close()

	log.Printf("mqoserver: serving %s sf=%g on %s (max-batch %d, max-wait %s, %s)",
		*workload, *sf, *addr, *maxBatch, *maxWait, *algName)
	log.Fatal(http.ListenAndServe(*addr, handler))
}

// newService boots the whole stack: generated benchmark data (TPC-D or
// SSB), a session optimizer with a plan cache, the micro-batching service
// and its HTTP handler. Shared with the end-to-end test.
func newService(workload string, sf float64, seed int64, poolPages, planCache int, cfg mqo.BatchingOptions, algName string) (http.Handler, *mqo.Service, error) {
	alg, err := mqo.ParseAlgorithm(algName)
	if err != nil {
		return nil, nil, err
	}
	cfg.Algorithm = alg
	cfg.UseVolcano = alg == mqo.Volcano

	var (
		cat  *mqo.Catalog
		load func(*mqo.DB, float64, int64) error
	)
	switch workload {
	case "tpcd":
		cat, load = tpcd.Catalog(sf), tpcd.LoadDB
	case "ssb":
		cat, load = ssb.Catalog(sf), ssb.LoadDB
	default:
		return nil, nil, fmt.Errorf("unknown workload %q (want tpcd or ssb)", workload)
	}
	db := mqo.NewDB(poolPages)
	if err := load(db, sf, seed); err != nil {
		return nil, nil, fmt.Errorf("loading %s data: %w", workload, err)
	}
	opts := []mqo.Option{mqo.WithDB(db)}
	if planCache > 0 {
		opts = append(opts, mqo.WithPlanCache(planCache))
	}
	opt, err := mqo.Open(cat, opts...)
	if err != nil {
		return nil, nil, err
	}
	svc, err := mqo.Serve(opt, cfg)
	if err != nil {
		return nil, nil, err
	}
	return mqo.ServiceHandler(svc), svc, nil
}
