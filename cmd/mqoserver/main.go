// Command mqoserver is a concurrent query service over generated benchmark
// data (TPC-D or SSB): an HTTP+JSON front end whose adaptive micro-batcher
// coalesces concurrent requests into multi-query-optimization batches.
//
//	mqoserver -addr :8080 -sf 0.01 -max-batch 8 -max-wait 2ms -alg greedy
//	mqoserver -workload ssb -sf 0.01 -resultcache 16777216
//	mqoserver -resultcache 4194304 -resultcache-warm 33554432   # tiered
//	mqoserver -trace out.json     # chrome://tracing span dump on shutdown
//
// Endpoints:
//
//	POST /query    {"sql": "SELECT ...", "timeout_ms": 0}
//	GET  /stats    batching + plan-cache accounting
//	GET  /metrics  Prometheus text exposition of the obs registry
//	GET  /debug/pprof/...  net/http/pprof profiles
//
// Concurrent POST /query requests that land in the same batching window
// are optimized and executed together; each caller receives its own rows
// plus the batch's sharing report (size, shared vs. no-sharing cost).
//
// SIGINT/SIGTERM shut the server down gracefully: the listener closes, the
// open batching window flushes, in-flight batches drain, and a final stats
// line (batches, queries, cost saved) is logged.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mqo"
	"mqo/internal/obs"
	"mqo/internal/ssb"
	"mqo/internal/tpcd"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workload     = flag.String("workload", "tpcd", "generated schema and data: tpcd|ssb")
		sf           = flag.Float64("sf", 0.01, "scale factor for the generated data")
		seed         = flag.Int64("seed", 1, "data generator seed")
		pool         = flag.Int("pool", 1024, "buffer pool size in pages")
		planCache    = flag.Int("plancache", 128, "plan-cache capacity in batches (0 disables)")
		resCache     = flag.Int64("resultcache", 0, "cross-batch result-cache RAM budget in bytes (0 disables)")
		resCacheWarm = flag.Int64("resultcache-warm", 0, "disk-backed warm-tier budget in bytes (0 disables tiering)")
		maxBatch     = flag.Int("max-batch", 8, "flush a batching window at this many queries")
		maxWait      = flag.Duration("max-wait", 2*time.Millisecond, "max time the first query of a window waits")
		workers      = flag.Int("workers", 2, "concurrently in-flight batches")
		shards       = flag.Int("shards", 0, "shard count for the plan and result caches (0 keeps the default of 1)")
		algName      = flag.String("alg", "greedy", "optimization algorithm (volcano|volcano-sh|volcano-ru|greedy)")
		traceOut     = flag.String("trace", "", "write a chrome://tracing span dump to this file on shutdown")
		noObs        = flag.Bool("no-obs", false, "disable metrics collection (observability overhead benchmark)")
	)
	flag.Parse()

	obs.SetEnabled(!*noObs)
	if *traceOut != "" {
		obs.StartTracing()
	}

	handler, svc, err := newService(*workload, *sf, *seed, *pool, *planCache, mqo.BatchingOptions{
		MaxBatch:             *maxBatch,
		MaxWait:              *maxWait,
		Workers:              *workers,
		Shards:               *shards,
		ResultCacheBytes:     *resCache,
		ResultCacheWarmBytes: *resCacheWarm,
	}, *algName)
	if err != nil {
		log.Fatalf("mqoserver: %v", err)
	}

	srv := &http.Server{Addr: *addr, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutCtx)
	}()

	log.Printf("mqoserver: serving %s sf=%g on %s (max-batch %d, max-wait %s, %s)",
		*workload, *sf, *addr, *maxBatch, *maxWait, *algName)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("mqoserver: %v", err)
	}

	// Graceful drain: the listener is closed, so no new submissions arrive;
	// Close flushes the open window and waits for in-flight batches.
	svc.Close()
	if *traceOut != "" {
		writeTrace(*traceOut)
	}
	st := svc.Stats()
	final, _ := json.Marshal(st)
	log.Printf("mqoserver: drained; final stats %s", final)
}

// writeTrace dumps the collected spans in chrome://tracing format.
func writeTrace(path string) {
	tr := obs.StopTracing()
	if tr == nil {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Printf("mqoserver: trace: %v", err)
		return
	}
	defer f.Close()
	if err := tr.WriteChromeTrace(f); err != nil {
		log.Printf("mqoserver: trace: %v", err)
		return
	}
	log.Printf("mqoserver: wrote %d trace spans to %s", len(tr.Spans()), path)
}

// newService boots the whole stack: generated benchmark data (TPC-D or
// SSB), a session optimizer with a plan cache, the micro-batching service
// and its HTTP handler. Shared with the end-to-end test.
func newService(workload string, sf float64, seed int64, poolPages, planCache int, cfg mqo.BatchingOptions, algName string) (http.Handler, *mqo.Service, error) {
	alg, err := mqo.ParseAlgorithm(algName)
	if err != nil {
		return nil, nil, err
	}
	cfg.Algorithm = alg
	cfg.UseVolcano = alg == mqo.Volcano

	var (
		cat  *mqo.Catalog
		load func(*mqo.DB, float64, int64) error
	)
	switch workload {
	case "tpcd":
		cat, load = tpcd.Catalog(sf), tpcd.LoadDB
	case "ssb":
		cat, load = ssb.Catalog(sf), ssb.LoadDB
	default:
		return nil, nil, fmt.Errorf("unknown workload %q (want tpcd or ssb)", workload)
	}
	db := mqo.NewDB(poolPages)
	if err := load(db, sf, seed); err != nil {
		return nil, nil, fmt.Errorf("loading %s data: %w", workload, err)
	}
	opts := []mqo.Option{mqo.WithDB(db)}
	if planCache > 0 {
		opts = append(opts, mqo.WithPlanCache(planCache))
	}
	opt, err := mqo.Open(cat, opts...)
	if err != nil {
		return nil, nil, err
	}
	svc, err := mqo.Serve(opt, cfg)
	if err != nil {
		return nil, nil, err
	}
	return withObsRoutes(mqo.ServiceHandler(svc)), svc, nil
}

// withObsRoutes mounts the observability surface next to the service API:
// GET /metrics (Prometheus text exposition of the default registry) and the
// net/http/pprof handlers under /debug/pprof/.
func withObsRoutes(api http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", api)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = obs.Default().WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
