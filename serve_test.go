package mqo

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"mqo/internal/tpcd"
)

// rowSet renders rows as a sorted multiset of strings, for order-
// insensitive comparison.
func rowSet(rows []Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		s := ""
		for _, v := range r {
			s += v.String() + "|"
		}
		out[i] = s
	}
	sort.Strings(out)
	return out
}

func equalRows(a, b []Row) bool {
	as, bs := rowSet(a), rowSet(b)
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// TestSubmitCoalesces is the acceptance test for the micro-batching
// service: K concurrent Submits on one session coalesce into fewer than K
// optimizer batches, every client receives exactly its own query's rows
// (verified against solo runs), and the service stats report the
// batch-size distribution and the estimated cost saved versus no sharing.
// Run under -race in CI.
func TestSubmitCoalesces(t *testing.T) {
	const (
		sf = 0.002
		k  = 16
	)
	db := NewDB(1024)
	if err := tpcd.LoadDB(db, sf, 1); err != nil {
		t.Fatal(err)
	}
	opt, err := Open(tpcd.Catalog(sf), WithDB(db), WithPlanCache(8),
		WithBatching(BatchingOptions{MaxBatch: k, MaxWait: 500 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}

	// Ground truth: each query executed alone.
	sqls := []string{sqlRevenue, sqlCounts}
	want := make([][]Row, len(sqls))
	for i, q := range sqls {
		solo, err := opt.Run(context.Background(), Batch{SQL: q, Algorithm: Greedy})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = solo.Queries[0].Rows
	}

	var wg sync.WaitGroup
	answers := make([]*Answer, k)
	errs := make(chan error, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ans, err := opt.Submit(context.Background(), sqls[i%len(sqls)])
			if err != nil {
				errs <- fmt.Errorf("client %d: %v", i, err)
				return
			}
			answers[i] = ans
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	batches := map[int64]bool{}
	for i, ans := range answers {
		if !equalRows(ans.Query.Rows, want[i%len(sqls)]) {
			t.Errorf("client %d: batched rows differ from solo execution", i)
		}
		batches[ans.Batch.Seq] = true
	}
	if len(batches) >= k {
		t.Errorf("%d concurrent Submits ran as %d batches; want coalescing (< %d)", k, len(batches), k)
	}

	stats := opt.svc.Stats()
	if stats.Queries != k {
		t.Errorf("stats: %d queries executed, want %d", stats.Queries, k)
	}
	if int64(len(batches)) != stats.Batches {
		t.Errorf("stats: %d batches, clients saw %d", stats.Batches, len(batches))
	}
	var histSum, multi int64
	for size, n := range stats.SizeHist {
		histSum += n
		if size > 1 {
			multi += n
		}
	}
	if histSum != stats.Batches || multi == 0 {
		t.Errorf("size histogram %v: want sums to %d with a multi-query batch", stats.SizeHist, stats.Batches)
	}
	if stats.CostSaved <= 0 || stats.CostNoShare <= stats.CostShared {
		t.Errorf("stats report no sharing won: %+v", stats)
	}
}

// TestSubmitRejectsMultiStatement: Submit is strictly one query per call.
func TestSubmitRejectsMultiStatement(t *testing.T) {
	db := NewDB(256)
	if err := tpcd.LoadDB(db, 0.002, 1); err != nil {
		t.Fatal(err)
	}
	opt, err := Open(tpcd.Catalog(0.002), WithDB(db))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := opt.Submit(context.Background(), sqlBatch); err == nil {
		t.Error("multi-statement Submit succeeded, want error")
	}
}

// TestServeRequiresDB: the batching service needs an attached database.
func TestServeRequiresDB(t *testing.T) {
	opt, err := Open(tpcd.Catalog(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Serve(opt, BatchingOptions{}); err == nil {
		t.Error("Serve without WithDB succeeded, want error")
	}
	if _, err := opt.Submit(context.Background(), sqlRevenue); err == nil {
		t.Error("Submit without WithDB succeeded, want error")
	}
}

// TestSubmitHonoursContext: a Submit whose context is cancelled returns
// promptly without failing other waiters in the same window.
func TestSubmitHonoursContext(t *testing.T) {
	db := NewDB(1024)
	if err := tpcd.LoadDB(db, 0.002, 1); err != nil {
		t.Fatal(err)
	}
	opt, err := Open(tpcd.Catalog(0.002), WithDB(db),
		WithBatching(BatchingOptions{MaxBatch: 8, MaxWait: 100 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	quit := make(chan error, 1)
	go func() {
		_, err := opt.Submit(ctx, sqlCounts)
		quit <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()

	ans, err := opt.Submit(context.Background(), sqlRevenue)
	if err != nil {
		t.Fatalf("surviving waiter failed: %v", err)
	}
	if len(ans.Query.Rows) == 0 {
		t.Error("surviving waiter got no rows")
	}
	if err := <-quit; !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled waiter got %v, want context.Canceled", err)
	}
}

// TestConcurrentRunsOneDB: two sessions sharing one storage DB may Run
// concurrently — runs serialize on the DB's run lock, each with a private
// temp namespace, so results match solo execution and no temp leaks.
func TestConcurrentRunsOneDB(t *testing.T) {
	const sf = 0.002
	db := NewDB(1024)
	if err := tpcd.LoadDB(db, sf, 1); err != nil {
		t.Fatal(err)
	}
	optA, err := Open(tpcd.Catalog(sf), WithDB(db))
	if err != nil {
		t.Fatal(err)
	}
	optB, err := Open(tpcd.Catalog(sf), WithDB(db))
	if err != nil {
		t.Fatal(err)
	}
	want, err := optA.Run(context.Background(), Batch{SQL: sqlBatch, Algorithm: Greedy})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		opt := optA
		if g%2 == 1 {
			opt = optB
		}
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				res, err := opt.Run(context.Background(), Batch{SQL: sqlBatch, Algorithm: Greedy})
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: %v", g, err)
					return
				}
				for qi := range res.Queries {
					if !equalRows(res.Queries[qi].Rows, want.Queries[qi].Rows) {
						errs <- fmt.Errorf("goroutine %d: query %d rows corrupted by concurrent run", g, qi)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := db.NumTemps(); n != 0 {
		t.Errorf("%d temp tables leaked after all runs ended", n)
	}
}
