// Package mqo is a from-scratch Go implementation of "Efficient and
// Extensible Algorithms for Multi Query Optimization" (Roy, Seshadri,
// Sudarshan, Bhobe; SIGMOD 2000): a Volcano-style cost-based optimizer over
// AND-OR DAGs with three multi-query-optimization heuristics — Volcano-SH,
// Volcano-RU and Greedy — plus the storage and execution substrate needed
// to run the optimized plans.
//
// This package is the public façade: it re-exports the types and entry
// points of the internal packages that downstream users need. A typical
// session is:
//
//	cat := catalog.New()              // or tpcd.Catalog(1)
//	queries := []*algebra.Tree{...}   // build queries in the algebra
//	dag, err := mqo.BuildDAG(cat, mqo.DefaultModel(), queries)
//	res, err := mqo.Optimize(dag, mqo.Greedy, mqo.Options{})
//	// res.Plan is executable via the exec engine; res.Cost is the
//	// estimated cost; res.Materialized lists shared intermediate results.
package mqo

import (
	"mqo/internal/catalog"
	"mqo/internal/core"
	"mqo/internal/cost"
	"mqo/internal/physical"
)

// Re-exported core types.
type (
	// Algorithm selects one of the paper's optimization strategies.
	Algorithm = core.Algorithm
	// Options configures optimization (greedy ablations, RU order).
	Options = core.Options
	// GreedyOptions are the §6.3 ablation switches.
	GreedyOptions = core.GreedyOptions
	// Result is an optimized batch: plan, cost, materialized set, stats.
	Result = core.Result
	// Stats is per-run instrumentation (opt time, greedy counters).
	Stats = core.Stats
	// Model holds the cost-model constants (§6).
	Model = cost.Model
	// Catalog describes base relations and statistics.
	Catalog = catalog.Catalog
	// DAG is the physical AND-OR DAG for a query batch.
	DAG = physical.DAG
	// Plan is a consolidated, executable evaluation plan.
	Plan = physical.Plan
)

// The four strategies of the paper's §6.
const (
	Volcano   = core.Volcano
	VolcanoSH = core.VolcanoSH
	VolcanoRU = core.VolcanoRU
	Greedy    = core.Greedy
)

// BuildDAG constructs the expanded logical AND-OR DAG for a batch of
// queries (with unification and subsumption derivations) and the physical
// DAG over it.
var BuildDAG = core.BuildDAG

// Optimize runs the selected algorithm and returns the plan, its estimated
// cost and instrumentation.
var Optimize = core.Optimize

// ComputeSharability runs the §4.1 degree-of-sharing analysis, marking
// sharable physical nodes and returning per-group degrees.
var ComputeSharability = core.ComputeSharability

// DefaultModel returns the paper's cost constants (4 KB blocks, 10 ms seek,
// 2/4 ms per block read/write, 0.2 ms CPU per block, 6 MB per operator).
var DefaultModel = cost.DefaultModel

// NewCatalog returns an empty catalog.
var NewCatalog = catalog.New

// AbstractParameterized implements the paper's §8 workload abstraction:
// queries differing only in selection constants are merged into one
// parameterized query invoked multiple times.
var AbstractParameterized = core.AbstractParameterized

// Abstraction is the result of AbstractParameterized.
type Abstraction = core.Abstraction
