// Package mqo is a from-scratch Go implementation of "Efficient and
// Extensible Algorithms for Multi Query Optimization" (Roy, Seshadri,
// Sudarshan, Bhobe; SIGMOD 2000): a Volcano-style cost-based optimizer over
// AND-OR DAGs with three multi-query-optimization heuristics — Volcano-SH,
// Volcano-RU and Greedy — plus a SQL front end, a storage engine and an
// iterator-based executor able to run the optimized plans.
//
// The public surface is session-oriented: Open returns an *Optimizer that
// owns the catalog, cost model, plan cache and (optionally) an attached
// database, and is safe for concurrent use by multiple goroutines. A
// typical session goes from SQL text to executed rows:
//
//	db := mqo.NewDB(1024)
//	cat := tpcd.Catalog(0.01)        // or build one with mqo.NewCatalog()
//	opt, err := mqo.Open(cat, mqo.WithDB(db), mqo.WithPlanCache(128))
//	res, err := opt.Run(ctx, mqo.Batch{
//		SQL: "SELECT nname, SUM(lprice) AS rev FROM lineitem, supplier, nation " +
//			"WHERE lsk = sk AND snk = nk GROUP BY nname",
//		Algorithm: mqo.Greedy,
//	})
//	// res.Queries[0].Rows holds the result; res.Cost the estimated cost;
//	// res.Materialized the shared intermediate results Greedy chose.
//
// Optimization without execution is available through OptimizeSQL and
// OptimizeBatch; ParseAlgorithm maps user-facing names ("greedy",
// "volcano-ru", ...) to Algorithm values; WithResultCache turns on the
// paper's §8 result cache — a row-backed store of spooled intermediate
// results that survives across batches, so repeated subexpressions in
// later traffic are answered from storage. The optimizer's
// search substrate auto-tunes its parallelism per batch: on large batches
// Greedy's benefit waves, Volcano-RU's order passes and the sharability
// analysis fan out over multiple cores (override with WithParallelism),
// and WithMultiPick lets Greedy commit several independent picks per
// wave — neither knob ever changes the chosen plan.
//
// For live traffic — independent concurrent requests rather than a
// pre-assembled batch — Serve (or Optimizer.Submit) runs an adaptive
// micro-batching service that coalesces whatever arrives within a
// batching window into one MQO batch, executes the shared plan once, and
// hands each caller its own query's rows; ServiceHandler exposes the
// service over HTTP+JSON (see cmd/mqoserver).
package mqo

import (
	"mqo/internal/algebra"
	"mqo/internal/cache"
	"mqo/internal/catalog"
	"mqo/internal/core"
	"mqo/internal/cost"
	"mqo/internal/exec"
	"mqo/internal/physical"
	"mqo/internal/storage"
)

// Re-exported types: the vocabulary of a session.
type (
	// Algorithm selects one of the paper's optimization strategies.
	Algorithm = core.Algorithm
	// Options configures optimization (greedy ablations, RU order).
	Options = core.Options
	// GreedyOptions are the §6.3 ablation switches.
	GreedyOptions = core.GreedyOptions
	// Result is an optimized batch: plan, cost, materialized set, stats.
	Result = core.Result
	// Stats is per-run instrumentation (opt time, greedy counters).
	Stats = core.Stats
	// Model holds the cost-model constants (§6).
	Model = cost.Model
	// Catalog describes base relations and statistics.
	Catalog = catalog.Catalog
	// Table is one catalog entry: schema, statistics, indexes.
	Table = catalog.Table
	// ColDef describes one column of a base table.
	ColDef = catalog.ColDef
	// IndexDef describes an index available on a base table.
	IndexDef = catalog.IndexDef
	// Plan is a consolidated, executable evaluation plan.
	Plan = physical.Plan
	// Query is one query of a batch, expressed in the logical algebra.
	Query = algebra.Tree
	// Value is a runtime SQL value (parameter bindings, result rows).
	Value = algebra.Value
	// Type is a SQL value type (TInt, TFloat, TString, TDate).
	Type = algebra.Type
	// Column is a qualified column reference.
	Column = algebra.Column
	// ColInfo is one column of a schema: reference plus type.
	ColInfo = algebra.ColInfo
	// Schema describes the columns of a relation or result.
	Schema = algebra.Schema
	// Row is one stored or result row.
	Row = storage.Row
	// DB is the storage engine an Optimizer executes plans against.
	DB = storage.DB
	// QueryResult is the executed output of one query of a batch.
	QueryResult = exec.QueryResult
	// RunStats is the measured execution profile of a batch run.
	RunStats = exec.RunStats
	// BatchProfile is the per-operator measured profile of an analyzed run
	// (Batch.Analyze): one tree per materialization and per query root.
	BatchProfile = exec.BatchProfile
	// NodeProfile is one operator's measured execution profile.
	NodeProfile = exec.NodeProfile
	// ResultCache is the cross-batch transient result cache (the paper's
	// §8 caching direction): a concurrency-safe, row-backed store of
	// spooled intermediate results consulted around every executed batch.
	// Enable it with WithResultCache.
	ResultCache = cache.Manager
	// ResultCacheStats is the result cache's accounting (hit rate, bytes,
	// admissions, evictions).
	ResultCacheStats = cache.Stats
	// CacheEntry is one cached materialized result.
	CacheEntry = cache.Entry
	// Abstraction is the result of AbstractParameterized.
	Abstraction = core.Abstraction
)

// The four strategies of the paper's §6.
const (
	Volcano   = core.Volcano
	VolcanoSH = core.VolcanoSH
	VolcanoRU = core.VolcanoRU
	Greedy    = core.Greedy
)

// SQL value types.
const (
	TInt    = algebra.TInt
	TFloat  = algebra.TFloat
	TString = algebra.TString
	TDate   = algebra.TDate
)

// Col builds a qualified column reference (alias, name).
func Col(qual, name string) Column { return algebra.Col(qual, name) }

// Algorithms lists all strategies in presentation order.
func Algorithms() []Algorithm { return core.Algorithms() }

// ParseAlgorithm maps a user-facing name to an Algorithm. Accepted names
// (case-insensitive): volcano, volcano-sh, sh, volcano-ru, ru, greedy.
func ParseAlgorithm(name string) (Algorithm, error) { return core.ParseAlgorithm(name) }

// DefaultModel returns the paper's cost constants (4 KB blocks, 10 ms seek,
// 2/4 ms per block read/write, 0.2 ms CPU per block, 6 MB per operator).
func DefaultModel() Model { return cost.DefaultModel() }

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog { return catalog.New() }

// Column-definition helpers for building catalog tables.
var (
	// IntCol is an integer column with the given distinct count.
	IntCol = catalog.IntCol
	// IntColRange is an integer column with distinct count and value range.
	IntColRange = catalog.IntColRange
	// FloatColRange is a float column with distinct count and value range.
	FloatColRange = catalog.FloatColRange
	// DateColRange is a date column with distinct count and value range.
	DateColRange = catalog.DateColRange
	// StrCol is a string column with the given width and distinct count.
	StrCol = catalog.StrCol
)

// Value constructors for parameter bindings and loaded rows.
var (
	IntVal    = algebra.IntVal
	FloatVal  = algebra.FloatVal
	StringVal = algebra.StringVal
	DateVal   = algebra.DateVal
)

// NewDB creates an in-process database with a buffer pool of the given
// number of pages, for use with WithDB.
func NewDB(poolPages int) *DB { return storage.NewDB(poolPages) }

// AbstractParameterized implements the paper's §8 workload abstraction:
// queries differing only in selection constants are merged into one
// parameterized query invoked multiple times.
func AbstractParameterized(batch []*Query) *Abstraction { return core.AbstractParameterized(batch) }

// FormatAnalyze renders an analyzed run (Batch.Analyze) as EXPLAIN ANALYZE
// text: per operator, the optimizer's estimated cost and cardinality
// against the measured rows, pages, bytes and wall time.
func FormatAnalyze(stats RunStats) string { return exec.FormatAnalyze(stats) }
