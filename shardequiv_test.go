package mqo

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"mqo/internal/exec"
	"mqo/internal/ssb"
)

// Sharded-vs-unsharded equivalence: sharding the serving hot path is a
// concurrency refactor, not a semantics change. At every shard count the
// optimizer must emit byte-identical plans (cache-table names included),
// return identical rows, and account result-cache traffic identically —
// eviction order is the only sanctioned difference, and these workloads
// are sized so nothing evicts.

const shardEquivSF = 0.005

// ssbShardWorld opens a served-ready SSB session over freshly generated
// data with the given shard count.
func ssbShardWorld(t *testing.T, shards int) *Optimizer {
	t.Helper()
	db := NewDB(1024)
	if err := ssb.LoadDB(db, shardEquivSF, 1); err != nil {
		t.Fatal(err)
	}
	opt, err := Open(ssb.Catalog(shardEquivSF),
		WithDB(db), WithPlanCache(16), WithShards(shards), WithResultCache(8<<20, 0))
	if err != nil {
		t.Fatal(err)
	}
	return opt
}

// ssbFlights returns the SSB query flights as ready-to-run batches.
func ssbFlights() [][]*Query {
	var out [][]*Query
	for n := 1; n <= ssb.NumFlights; n++ {
		out = append(out, ssb.Flight(n))
	}
	return out
}

// TestShardedPlansRowsAndAccountingMatchUnsharded replays the SSB flights
// twice (the second pass hits the result cache) at shard counts 1, 4 and
// 16 and demands byte equality of every plan string against the unsharded
// reference, identical canonicalized rows, and equal result-cache hit,
// admission and byte accounting.
func TestShardedPlansRowsAndAccountingMatchUnsharded(t *testing.T) {
	ctx := context.Background()
	type outcome struct {
		plans []string
		rows  []string
		stats ResultCacheStats
	}
	run := func(shards int) outcome {
		t.Helper()
		opt := ssbShardWorld(t, shards)
		var o outcome
		for pass := 0; pass < 2; pass++ {
			for _, flight := range ssbFlights() {
				res, err := opt.Run(ctx, Batch{Queries: flight, Algorithm: Greedy})
				if err != nil {
					t.Fatalf("shards=%d pass %d: %v", shards, pass, err)
				}
				o.plans = append(o.plans, res.Plan.String())
				for _, qr := range res.Queries {
					o.rows = append(o.rows, exec.Canonicalize(qr.Schema, qr.Rows)...)
				}
			}
		}
		o.stats = opt.ResultCacheStats()
		return o
	}

	ref := run(1)
	if ref.stats.Admissions == 0 {
		t.Fatal("reference run admitted nothing; the equivalence check would be vacuous")
	}
	if ref.stats.Hits == 0 {
		t.Fatal("reference second pass hit nothing; the equivalence check would be vacuous")
	}
	if ref.stats.Evictions != 0 {
		t.Fatalf("reference run evicted %d entries; size the workload under the budget", ref.stats.Evictions)
	}
	for _, shards := range []int{4, 16} {
		got := run(shards)
		if len(got.plans) != len(ref.plans) {
			t.Fatalf("shards=%d: %d plans vs %d", shards, len(got.plans), len(ref.plans))
		}
		for i := range ref.plans {
			if got.plans[i] != ref.plans[i] {
				t.Errorf("shards=%d: plan %d diverged from unsharded:\n--- shards=1 ---\n%s\n--- shards=%d ---\n%s",
					shards, i, ref.plans[i], shards, got.plans[i])
			}
		}
		if len(got.rows) != len(ref.rows) {
			t.Fatalf("shards=%d: %d rows vs %d", shards, len(got.rows), len(ref.rows))
		}
		for i := range ref.rows {
			if got.rows[i] != ref.rows[i] {
				t.Fatalf("shards=%d: row %d diverged from unsharded", shards, i)
			}
		}
		for _, cmp := range []struct {
			name     string
			got, ref int64
		}{
			{"hits", got.stats.Hits, ref.stats.Hits},
			{"hit_batches", got.stats.HitBatches, ref.stats.HitBatches},
			{"batches", got.stats.Batches, ref.stats.Batches},
			{"admissions", got.stats.Admissions, ref.stats.Admissions},
			{"evictions", got.stats.Evictions, ref.stats.Evictions},
			{"used_bytes", got.stats.UsedBytes, ref.stats.UsedBytes},
			{"entries", int64(got.stats.Entries), int64(ref.stats.Entries)},
		} {
			if cmp.got != cmp.ref {
				t.Errorf("shards=%d: %s %d != unsharded %d", shards, cmp.name, cmp.got, cmp.ref)
			}
		}
	}
}

// TestShardedRowsIdenticalAcrossWorkers submits every SSB flight query
// concurrently through the micro-batching service at shard counts
// {1, 4, 16} × worker counts {1, 2, 8} and checks each query's
// canonicalized rows against a serial unsharded reference. Batch
// composition varies with timing, so plans are not compared here — rows
// must not care which batch computed them.
func TestShardedRowsIdenticalAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	var queries []*Query
	for _, flight := range ssbFlights() {
		queries = append(queries, flight...)
	}

	refOpt := ssbShardWorld(t, 1)
	ref := make([][]string, len(queries))
	for i, q := range queries {
		res, err := refOpt.Run(ctx, Batch{Queries: []*Query{q}, Algorithm: Greedy})
		if err != nil {
			t.Fatalf("reference query %d: %v", i, err)
		}
		ref[i] = exec.Canonicalize(res.Queries[0].Schema, res.Queries[0].Rows)
	}

	for _, shards := range []int{1, 4, 16} {
		for _, workers := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("shards=%d/workers=%d", shards, workers), func(t *testing.T) {
				opt := ssbShardWorld(t, shards)
				svc, err := Serve(opt, BatchingOptions{MaxBatch: 4, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				defer svc.Close()
				got := make([][]string, len(queries))
				errs := make([]error, len(queries))
				var wg sync.WaitGroup
				for i, q := range queries {
					wg.Add(1)
					go func(i int, q *Query) {
						defer wg.Done()
						ans, err := svc.SubmitQuery(ctx, q)
						if err != nil {
							errs[i] = err
							return
						}
						got[i] = exec.Canonicalize(ans.Query.Schema, ans.Query.Rows)
					}(i, q)
				}
				wg.Wait()
				for i := range queries {
					if errs[i] != nil {
						t.Fatalf("query %d: %v", i, errs[i])
					}
					if len(got[i]) != len(ref[i]) {
						t.Fatalf("query %d: %d rows vs reference %d", i, len(got[i]), len(ref[i]))
					}
					for j := range ref[i] {
						if got[i][j] != ref[i][j] {
							t.Fatalf("query %d row %d diverged from serial unsharded reference", i, j)
						}
					}
				}
			})
		}
	}
}
