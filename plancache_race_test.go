package mqo

import (
	"context"
	"sync"
	"testing"

	"mqo/internal/physical"
	"mqo/internal/tpcd"
)

// TestPlanCacheDefensiveCopiesUnderMutation: every plan-cache hitter gets
// a defensive copy of the Result — concurrent callers mutating the
// top-level slices (Result.Materialized, Plan.Mats, Plan.ByNode) must not
// corrupt each other's view or the stored entry (run under -race in CI).
// Plan *nodes* stay shared and read-only; the mutations here only touch
// the per-caller containers the contract says are private.
func TestPlanCacheDefensiveCopiesUnderMutation(t *testing.T) {
	opt, err := Open(tpcd.Catalog(1), WithPlanCache(8))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ref, err := opt.OptimizeSQL(ctx, sqlBatch, Greedy)
	if err != nil {
		t.Fatal(err)
	}
	wantMats, wantMaterialized := len(ref.Plan.Mats), len(ref.Materialized)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				res, err := opt.OptimizeSQL(ctx, sqlBatch, Greedy)
				if err != nil {
					t.Error(err)
					return
				}
				if len(res.Plan.Mats) != wantMats || len(res.Materialized) != wantMaterialized {
					t.Errorf("hit observed a mutated copy: %d mats, %d materialized",
						len(res.Plan.Mats), len(res.Materialized))
					return
				}
				// Hostile caller: reorder and grow the top-level slices and
				// scribble on the per-caller node map.
				for j, k := 0, len(res.Materialized)-1; j < k; j, k = j+1, k-1 {
					res.Materialized[j], res.Materialized[k] = res.Materialized[k], res.Materialized[j]
				}
				res.Materialized = append(res.Materialized, nil)
				for j, k := 0, len(res.Plan.Mats)-1; j < k; j, k = j+1, k-1 {
					res.Plan.Mats[j], res.Plan.Mats[k] = res.Plan.Mats[k], res.Plan.Mats[j]
				}
				res.Plan.Mats = append(res.Plan.Mats, (*physical.PlanNode)(nil))
				res.Plan.ByNode[nil] = nil
			}
		}()
	}
	wg.Wait()

	final, err := opt.OptimizeSQL(ctx, sqlBatch, Greedy)
	if err != nil {
		t.Fatal(err)
	}
	if len(final.Plan.Mats) != wantMats || len(final.Materialized) != wantMaterialized {
		t.Errorf("stored entry corrupted: %d mats, %d materialized (want %d, %d)",
			len(final.Plan.Mats), len(final.Materialized), wantMats, wantMaterialized)
	}
	if st := opt.CacheStats(); st.Hits == 0 {
		t.Error("no plan-cache hits recorded, test exercised nothing")
	}
}

// TestPlanCacheWithResultCache: plan-cache hits must interact correctly
// with the result cache — a cached plan is only reused at the result-cache
// generation it was optimized under, its referenced spooled tables are
// pinned for the run, and results stay correct across admissions (which
// bump the generation and strand older plan-cache keys).
func TestPlanCacheWithResultCache(t *testing.T) {
	const sf = 0.002
	db := NewDB(1024)
	if err := tpcd.LoadDB(db, sf, 1); err != nil {
		t.Fatal(err)
	}
	opt, err := Open(tpcd.Catalog(sf), WithDB(db), WithPlanCache(16), WithResultCache(16<<20, 0))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	run := func(sql string) *ExecResult {
		t.Helper()
		res, err := opt.Run(ctx, Batch{SQL: sql, Algorithm: Greedy})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first := run(sqlRevenue) // spools: generation bumps, plan not cached
	second := run(sqlRevenue)
	if second.Exec.IO.Reads >= first.Exec.IO.Reads {
		t.Errorf("second run reads %d not below first %d", second.Exec.IO.Reads, first.Exec.IO.Reads)
	}
	// Steady state: the second run armed hits and spooled nothing new, so
	// its plan is cacheable; the third run should be a plan-cache hit at
	// the same generation with identical rows.
	before := opt.CacheStats()
	third := run(sqlRevenue)
	after := opt.CacheStats()
	if after.Hits <= before.Hits {
		t.Error("steady-state repeat was not a plan-cache hit")
	}
	if len(third.Queries[0].Rows) != len(second.Queries[0].Rows) {
		t.Fatalf("plan-cache hit changed the result: %d vs %d rows",
			len(third.Queries[0].Rows), len(second.Queries[0].Rows))
	}

	// A different query admits new entries → generation bumps → the old
	// key is stranded; the next repeat re-optimizes (no stale plan with
	// dead table references is ever served) and still answers from cache.
	genBefore := opt.ResultCacheStats().Generation
	run(sqlCounts)
	if gen := opt.ResultCacheStats().Generation; gen == genBefore {
		t.Skip("counts query admitted nothing; generation unchanged")
	}
	fourth := run(sqlRevenue)
	if len(fourth.Queries[0].Rows) != len(second.Queries[0].Rows) {
		t.Fatalf("post-admission repeat changed the result: %d vs %d rows",
			len(fourth.Queries[0].Rows), len(second.Queries[0].Rows))
	}
	if fourth.Exec.IO.Reads > first.Exec.IO.Reads {
		t.Errorf("post-admission repeat reads %d exceed cold reads %d",
			fourth.Exec.IO.Reads, first.Exec.IO.Reads)
	}
	if st := opt.ResultCacheStats(); st.HitBatches < 2 {
		t.Errorf("expected repeated hits, stats: %+v", st)
	}
}
