module mqo

go 1.24
