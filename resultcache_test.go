package mqo

import (
	"context"
	"testing"

	"mqo/internal/tpcd"
)

// resultCacheWorld boots a served session over freshly generated TPC-D
// data: identical data for every call, so cache-on and cache-off services
// are comparable row-for-row.
func resultCacheWorld(t *testing.T, sf float64, opts ...Option) (*Optimizer, *Service) {
	t.Helper()
	db := NewDB(1024)
	if err := tpcd.LoadDB(db, sf, 1); err != nil {
		t.Fatal(err)
	}
	opt, err := Open(tpcd.Catalog(sf), append([]Option{WithDB(db)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := Serve(opt, BatchingOptions{MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return opt, svc
}

// TestServeResultCacheEndToEnd is the acceptance test for the row-backed
// result cache on the serving path: the same query sequence driven through
// mqo.Serve twice with WithResultCache must (a) execute the second pass
// with strictly lower measured I/O, answered via real cache-table scans;
// (b) return rows byte-identical to a cache-off service over the same
// data; and (c) under a tightened byte budget, actually drop the spooled
// tables from storage.
func TestServeResultCacheEndToEnd(t *testing.T) {
	const sf = 0.002
	sequence := []string{sqlRevenue, sqlCounts, sqlBatch}
	ctx := context.Background()

	runPass := func(svc *Service) (reads, writes int64, hits int, rows [][]Row) {
		t.Helper()
		for _, sql := range sequence {
			queries, err := svc.opt.ParseSQL(sql)
			if err != nil {
				t.Fatal(err)
			}
			var batchRows []Row
			for _, q := range queries {
				ans, err := svc.SubmitQuery(ctx, q)
				if err != nil {
					t.Fatal(err)
				}
				reads += ans.Batch.Exec.IO.Reads
				writes += ans.Batch.Exec.IO.Writes
				hits += ans.Batch.ResultCacheHits
				batchRows = append(batchRows, ans.Query.Rows...)
			}
			rows = append(rows, batchRows)
		}
		return reads, writes, hits, rows
	}

	opt, cached := resultCacheWorld(t, sf, WithPlanCache(16), WithResultCache(16<<20, 0))
	reads1, _, _, rows1 := runPass(cached)
	reads2, writes2, hits2, rows2 := runPass(cached)

	// (a) Second pass strictly cheaper, and cheap *because of* cache-table
	// scans (the batches report spooled-table reads).
	if reads2 >= reads1 {
		t.Errorf("second pass reads %d not strictly below first pass %d", reads2, reads1)
	}
	if hits2 == 0 {
		t.Error("second pass reported no result-cache table reads")
	}
	if writes2 != 0 {
		t.Errorf("second pass wrote %d pages; expected pure cache reads", writes2)
	}
	st := opt.ResultCacheStats()
	if st.Admissions == 0 || st.HitBatches == 0 {
		t.Errorf("store recorded no traffic: %+v", st)
	}

	// (b) Cache-on results byte-identical to a cache-off service over the
	// same generated data, row for row, both passes.
	_, plain := resultCacheWorld(t, sf)
	_, _, _, prows1 := runPass(plain)
	for pi, pass := range [][][]Row{rows1, rows2} {
		for bi := range pass {
			if len(pass[bi]) != len(prows1[bi]) {
				t.Fatalf("pass %d batch %d: %d rows with cache vs %d without",
					pi+1, bi, len(pass[bi]), len(prows1[bi]))
			}
			for ri := range pass[bi] {
				for ci := range pass[bi][ri] {
					if pass[bi][ri][ci].String() != prows1[bi][ri][ci].String() {
						t.Fatalf("pass %d batch %d row %d col %d: %v with cache vs %v without",
							pi+1, bi, ri, ci, pass[bi][ri][ci], prows1[bi][ri][ci])
					}
				}
			}
		}
	}

	// (c) Eviction under a tight byte budget drops the spooled tables from
	// storage, not just from the accounting.
	db := opt.DB()
	tablesBefore := db.NumCaches()
	if tablesBefore == 0 {
		t.Fatal("no spooled tables to evict")
	}
	names := db.CacheNames()
	opt.ResultCache().SetBudget(4096) // one page: at most one entry survives
	stAfter := opt.ResultCacheStats()
	if stAfter.Evictions == 0 {
		t.Fatal("tight budget triggered no evictions")
	}
	if got := db.NumCaches(); got >= tablesBefore || int64(got)*4096 > 4096 {
		t.Errorf("storage still holds %d spooled tables (was %d)", got, tablesBefore)
	}
	if stAfter.UsedBytes > 4096 {
		t.Errorf("store over tightened budget: %+v", stAfter)
	}
	dropped := 0
	for _, name := range names {
		if _, err := db.Cache(name); err != nil {
			dropped++
		}
	}
	if dropped == 0 {
		t.Error("no spooled table was actually dropped from storage")
	}

	// The service keeps answering correctly after eviction: stale plans
	// cannot reference dropped tables (generation-keyed plan cache), and
	// recomputation still returns the same rows.
	_, _, _, rows3 := runPass(cached)
	for bi := range rows3 {
		if len(rows3[bi]) != len(rows1[bi]) {
			t.Fatalf("post-eviction batch %d: %d rows, want %d", bi, len(rows3[bi]), len(rows1[bi]))
		}
	}
}
