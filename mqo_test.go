package mqo

import (
	"fmt"
	"testing"

	"mqo/internal/algebra"
	"mqo/internal/sql"
	"mqo/internal/tpcd"
)

// TestFacadeRoundTrip exercises the public API end to end: catalog, SQL
// parsing, DAG construction, and all four algorithms.
func TestFacadeRoundTrip(t *testing.T) {
	cat := tpcd.Catalog(1)
	batch, err := sql.ParseBatch(cat, `
		SELECT nname, SUM(lprice) AS rev FROM lineitem, supplier, nation
		WHERE lsk = sk AND snk = nk AND lship > 2000 GROUP BY nname;
		SELECT nname, COUNT(*) AS n FROM lineitem, supplier, nation
		WHERE lsk = sk AND snk = nk AND lship > 2200 GROUP BY nname`)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := BuildDAG(cat, DefaultModel(), batch)
	if err != nil {
		t.Fatal(err)
	}
	var volcano, greedy float64
	for _, alg := range []Algorithm{Volcano, VolcanoSH, VolcanoRU, Greedy} {
		res, err := Optimize(pd, alg, Options{})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.Cost <= 0 {
			t.Fatalf("%v: bad cost", alg)
		}
		switch alg {
		case Volcano:
			volcano = res.Cost
		case Greedy:
			greedy = res.Cost
		}
	}
	if greedy > volcano {
		t.Errorf("greedy (%f) worse than volcano (%f)", greedy, volcano)
	}
	degrees := ComputeSharability(pd)
	if len(degrees) == 0 {
		t.Error("no sharability degrees computed")
	}
}

// ExampleOptimize shows the minimal optimization session on a sharable
// batch.
func ExampleOptimize() {
	cat := tpcd.Catalog(1)
	q1 := tpcd.Q11()
	pd, err := BuildDAG(cat, DefaultModel(), []*algebra.Tree{q1})
	if err != nil {
		panic(err)
	}
	v, _ := Optimize(pd, Volcano, Options{})
	g, _ := Optimize(pd, Greedy, Options{})
	fmt.Printf("greedy beats volcano: %v\n", g.Cost < v.Cost)
	fmt.Printf("materialized shared results: %v\n", len(g.Materialized) > 0)
	// Output:
	// greedy beats volcano: true
	// materialized shared results: true
}
