package mqo

import (
	"context"
	"fmt"
	"testing"

	"mqo/internal/tpcd"
)

// TestSessionRoundTrip exercises the public API end to end: open a
// session, parse SQL, and optimize the batch with all four algorithms.
func TestSessionRoundTrip(t *testing.T) {
	opt, err := Open(tpcd.Catalog(1), WithModel(DefaultModel()))
	if err != nil {
		t.Fatal(err)
	}
	const batch = `
		SELECT nname, SUM(lprice) AS rev FROM lineitem, supplier, nation
		WHERE lsk = sk AND snk = nk AND lship > 2000 GROUP BY nname;
		SELECT nname, COUNT(*) AS n FROM lineitem, supplier, nation
		WHERE lsk = sk AND snk = nk AND lship > 2200 GROUP BY nname`
	ctx := context.Background()
	var volcano, greedy float64
	for _, alg := range Algorithms() {
		res, err := opt.OptimizeSQL(ctx, batch, alg)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.Cost <= 0 {
			t.Fatalf("%v: bad cost", alg)
		}
		switch alg {
		case Volcano:
			volcano = res.Cost
		case Greedy:
			greedy = res.Cost
		}
	}
	if greedy > volcano {
		t.Errorf("greedy (%f) worse than volcano (%f)", greedy, volcano)
	}
}

// TestWithParallelism: a parallel session must produce the identical plan,
// cost and materialized set as a serial one — parallelism is a wall-clock
// knob, never a plan knob.
func TestWithParallelism(t *testing.T) {
	const batch = `
		SELECT nname, SUM(lprice) AS rev FROM lineitem, supplier, nation
		WHERE lsk = sk AND snk = nk AND lship > 2000 GROUP BY nname;
		SELECT nname, COUNT(*) AS n FROM lineitem, supplier, nation
		WHERE lsk = sk AND snk = nk AND lship > 2200 GROUP BY nname`
	ctx := context.Background()
	serialOpt, err := Open(tpcd.Catalog(1))
	if err != nil {
		t.Fatal(err)
	}
	parallelOpt, err := Open(tpcd.Catalog(1), WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	serial, err := serialOpt.OptimizeSQL(ctx, batch, Greedy)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := parallelOpt.OptimizeSQL(ctx, batch, Greedy)
	if err != nil {
		t.Fatal(err)
	}
	if parallel.Cost != serial.Cost {
		t.Errorf("parallel cost %v != serial cost %v", parallel.Cost, serial.Cost)
	}
	if len(parallel.Materialized) != len(serial.Materialized) {
		t.Fatalf("materialized %d vs %d nodes", len(parallel.Materialized), len(serial.Materialized))
	}
	if parallel.Plan.String() != serial.Plan.String() {
		t.Errorf("parallel plan differs from serial plan:\n%s\nvs\n%s", parallel.Plan, serial.Plan)
	}
}

// TestWithMultiPick: a session with speculative multi-pick enabled must
// produce the identical plan and cost as a single-pick session — multi-
// pick, like parallelism, is a wall-clock knob, never a plan knob.
func TestWithMultiPick(t *testing.T) {
	const batch = `
		SELECT nname, SUM(lprice) AS rev FROM lineitem, supplier, nation
		WHERE lsk = sk AND snk = nk AND lship > 2000 GROUP BY nname;
		SELECT nname, COUNT(*) AS n FROM lineitem, supplier, nation
		WHERE lsk = sk AND snk = nk AND lship > 2200 GROUP BY nname`
	ctx := context.Background()
	single, err := Open(tpcd.Catalog(1), WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Open(tpcd.Catalog(1), WithMultiPick(4), WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	sres, err := single.OptimizeSQL(ctx, batch, Greedy)
	if err != nil {
		t.Fatal(err)
	}
	mres, err := multi.OptimizeSQL(ctx, batch, Greedy)
	if err != nil {
		t.Fatal(err)
	}
	if mres.Cost != sres.Cost {
		t.Errorf("multi-pick cost %v != single-pick cost %v", mres.Cost, sres.Cost)
	}
	if mres.Plan.String() != sres.Plan.String() {
		t.Errorf("multi-pick plan differs from single-pick plan")
	}
}

// TestParseAlgorithm covers the shared name mapping used by every command.
func TestParseAlgorithm(t *testing.T) {
	for name, want := range map[string]Algorithm{
		"volcano": Volcano, "Volcano-SH": VolcanoSH, "sh": VolcanoSH,
		"volcano-ru": VolcanoRU, "RU": VolcanoRU, "greedy": Greedy,
	} {
		got, err := ParseAlgorithm(name)
		if err != nil || got != want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseAlgorithm("simplex"); err == nil {
		t.Error("ParseAlgorithm accepted an unknown name")
	}
}

// TestAlgorithmString: out-of-range values must render, not panic.
func TestAlgorithmString(t *testing.T) {
	if s := Algorithm(42).String(); s != "Algorithm(42)" {
		t.Errorf("got %q, want %q", s, "Algorithm(42)")
	}
	if s := Algorithm(-1).String(); s != "Algorithm(-1)" {
		t.Errorf("got %q, want %q", s, "Algorithm(-1)")
	}
	if s := Greedy.String(); s != "Greedy" {
		t.Errorf("got %q, want %q", s, "Greedy")
	}
}

// ExampleOpen shows the minimal optimization session.
func ExampleOpen() {
	opt, err := Open(tpcd.Catalog(1))
	if err != nil {
		panic(err)
	}
	ctx := context.Background()
	batch := []*Query{tpcd.Q11()}
	v, _ := opt.OptimizeBatch(ctx, batch, Volcano)
	g, _ := opt.OptimizeBatch(ctx, batch, Greedy)
	fmt.Printf("greedy beats volcano: %v\n", g.Cost < v.Cost)
	fmt.Printf("materialized shared results: %v\n", len(g.Materialized) > 0)
	// Output:
	// greedy beats volcano: true
	// materialized shared results: true
}
