package mqo

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"mqo/internal/tpcd"
)

const (
	sqlRevenue = `SELECT nname, SUM(lprice) AS rev FROM lineitem, supplier, nation
		WHERE lsk = sk AND snk = nk AND lship > 2000 GROUP BY nname`
	sqlCounts = `SELECT nname, COUNT(*) AS n FROM lineitem, supplier, nation
		WHERE lsk = sk AND snk = nk AND lship > 2200 GROUP BY nname`
	sqlBatch = sqlRevenue + ";" + sqlCounts
)

// TestConcurrentOptimize hammers one session handle from many goroutines
// mixing OptimizeBatch and OptimizeSQL (run under -race in CI): every call
// must succeed and produce the same cost as a serial run.
func TestConcurrentOptimize(t *testing.T) {
	opt, err := Open(tpcd.Catalog(1), WithPlanCache(8))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	want, err := opt.OptimizeSQL(ctx, sqlBatch, Greedy)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := opt.ParseSQL(sqlBatch)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*4)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				var res *Result
				var err error
				alg := Algorithms()[(g+i)%4]
				if i%2 == 0 {
					res, err = opt.OptimizeSQL(ctx, sqlBatch, alg)
				} else {
					res, err = opt.OptimizeBatch(ctx, queries, alg)
				}
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: %v: %v", g, alg, err)
					return
				}
				if alg == Greedy && res.Cost != want.Cost {
					errs <- fmt.Errorf("goroutine %d: greedy cost %f, serial run got %f", g, res.Cost, want.Cost)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// countdownCtx reports cancellation after Err has been polled n times,
// triggering it deterministically inside the optimizer's main loop.
type countdownCtx struct {
	context.Context
	n int32
}

func (c *countdownCtx) Err() error {
	if atomic.AddInt32(&c.n, -1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestOptimizeCancellation: a cancelled context aborts a Greedy run with
// context.Canceled — both when cancelled up front and mid-greedy-loop.
func TestOptimizeCancellation(t *testing.T) {
	opt, err := Open(tpcd.Catalog(1))
	if err != nil {
		t.Fatal(err)
	}
	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := opt.OptimizeSQL(pre, sqlBatch, Greedy); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled: got %v, want context.Canceled", err)
	}
	// Survive the OptimizeBatch and core.Optimize entry checkpoints, then
	// cancel at the first poll inside the greedy pick loop.
	mid := &countdownCtx{Context: context.Background(), n: 2}
	if _, err := opt.OptimizeSQL(mid, sqlBatch, Greedy); !errors.Is(err, context.Canceled) {
		t.Errorf("mid-loop: got %v, want context.Canceled", err)
	}
}

// TestPlanCacheAccounting checks hit/miss bookkeeping: identical batches
// (even parsed from separate SQL strings) hit; different algorithms or
// different queries miss; eviction respects the LRU capacity.
func TestPlanCacheAccounting(t *testing.T) {
	opt, err := Open(tpcd.Catalog(1), WithPlanCache(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	first, err := opt.OptimizeSQL(ctx, sqlBatch, Greedy)
	if err != nil {
		t.Fatal(err)
	}
	second, err := opt.OptimizeSQL(ctx, sqlBatch, Greedy)
	if err != nil {
		t.Fatal(err)
	}
	// A hit serves the cached plan through a defensive copy: the Result
	// struct and its top-level slices are fresh per caller, but the plan
	// root (and every plan node) is the shared cached one.
	if first == second {
		t.Error("cache hit returned the cached *Result itself, want a defensive copy")
	}
	if first.Plan.Root != second.Plan.Root {
		t.Error("identical batch was not served from the plan cache")
	}
	if first.Cost != second.Cost || first.NoShareCost != second.NoShareCost {
		t.Errorf("copy diverges: %+v vs %+v", first, second)
	}
	// One hitter mutating its slices must not corrupt another hit.
	second.Materialized = append(second.Materialized, nil)
	second.Plan.Mats = append(second.Plan.Mats, nil)
	third, err := opt.OptimizeSQL(ctx, sqlBatch, Greedy)
	if err != nil {
		t.Fatal(err)
	}
	if len(third.Materialized) != len(first.Materialized) || len(third.Plan.Mats) != len(first.Plan.Mats) {
		t.Error("a caller's append leaked into a later cache hit")
	}
	if s := opt.CacheStats(); s.Hits != 2 || s.Misses != 1 || s.Entries != 1 {
		t.Errorf("after repeats: stats %+v, want 2 hits / 1 miss / 1 entry", s)
	}

	if _, err := opt.OptimizeSQL(ctx, sqlBatch, VolcanoSH); err != nil {
		t.Fatal(err)
	}
	if s := opt.CacheStats(); s.Hits != 2 || s.Misses != 2 {
		t.Errorf("different algorithm should miss: stats %+v", s)
	}

	// A third distinct key evicts the least recently used entry (cap 2).
	if _, err := opt.OptimizeSQL(ctx, sqlRevenue, Greedy); err != nil {
		t.Fatal(err)
	}
	if s := opt.CacheStats(); s.Entries != 2 || s.Cap != 2 {
		t.Errorf("eviction: stats %+v, want 2 entries at cap 2", s)
	}

	// The cacheless session reports zeroes and still optimizes.
	plain, err := Open(tpcd.Catalog(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.OptimizeSQL(ctx, sqlRevenue, Greedy); err != nil {
		t.Fatal(err)
	}
	if s := plain.CacheStats(); s != (CacheStats{}) {
		t.Errorf("disabled cache reported %+v", s)
	}
}

// TestRunSQL goes the whole way: SQL text in, executed rows out, on a
// small generated TPC-D instance.
func TestRunSQL(t *testing.T) {
	const sf = 0.002
	db := NewDB(1024)
	if err := tpcd.LoadDB(db, sf, 1); err != nil {
		t.Fatal(err)
	}
	opt, err := Open(tpcd.Catalog(sf), WithDB(db), WithPlanCache(8))
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Run(context.Background(), Batch{SQL: sqlBatch, Algorithm: Greedy})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Queries) != 2 {
		t.Fatalf("got %d query results, want 2", len(res.Queries))
	}
	if res.Exec.RowsOut == 0 || len(res.Queries[0].Rows) == 0 {
		t.Error("executed batch returned no rows")
	}
	if res.Cost <= 0 {
		t.Error("missing optimization result in ExecResult")
	}
}

// TestRunConcurrent launches several goroutines through Run on one handle;
// execution is serialized internally, results must match.
func TestRunConcurrent(t *testing.T) {
	const sf = 0.002
	db := NewDB(1024)
	if err := tpcd.LoadDB(db, sf, 1); err != nil {
		t.Fatal(err)
	}
	opt, err := Open(tpcd.Catalog(sf), WithDB(db), WithPlanCache(8))
	if err != nil {
		t.Fatal(err)
	}
	want, err := opt.Run(context.Background(), Batch{SQL: sqlRevenue, Algorithm: Greedy})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res, err := opt.Run(context.Background(), Batch{SQL: sqlRevenue, Algorithm: Greedy})
			if err != nil {
				errs <- fmt.Errorf("goroutine %d: %v", g, err)
				return
			}
			if len(res.Queries[0].Rows) != len(want.Queries[0].Rows) {
				errs <- fmt.Errorf("goroutine %d: %d rows, want %d", g, len(res.Queries[0].Rows), len(want.Queries[0].Rows))
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestRunErrors: Run without a database, and Batch with nothing to run.
func TestRunErrors(t *testing.T) {
	opt, err := Open(tpcd.Catalog(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := opt.Run(context.Background(), Batch{SQL: sqlRevenue}); err == nil {
		t.Error("Run without WithDB should fail")
	}
	withDB, err := Open(tpcd.Catalog(1), WithDB(NewDB(64)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := withDB.Run(context.Background(), Batch{}); err == nil {
		t.Error("Run with an empty batch should fail")
	}
	queries, err := withDB.ParseSQL(sqlRevenue)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := withDB.Run(context.Background(), Batch{SQL: sqlCounts, Queries: queries}); err == nil {
		t.Error("Run with both SQL and Queries set should fail")
	}
	if _, err := Open(nil); err == nil {
		t.Error("Open(nil) should fail")
	}
}

// TestResultCacheSession: a session opened with WithResultCache spools a
// query's result on the first run and answers the repeat from the spooled
// table — estimated cost and measured page reads both drop, and the store
// reports the hit.
func TestResultCacheSession(t *testing.T) {
	const sf = 0.002
	db := NewDB(1024)
	if err := tpcd.LoadDB(db, sf, 1); err != nil {
		t.Fatal(err)
	}
	opt, err := Open(tpcd.Catalog(sf), WithDB(db), WithResultCache(16<<20, 0))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	first, err := opt.Run(ctx, Batch{SQL: sqlRevenue, Algorithm: Greedy})
	if err != nil {
		t.Fatal(err)
	}
	second, err := opt.Run(ctx, Batch{SQL: sqlRevenue, Algorithm: Greedy})
	if err != nil {
		t.Fatal(err)
	}
	if second.Exec.IO.Reads >= first.Exec.IO.Reads {
		t.Errorf("repeat run reads %d not below first run reads %d",
			second.Exec.IO.Reads, first.Exec.IO.Reads)
	}
	if second.Cost >= first.Cost {
		t.Errorf("repeat run estimated cost %f not below first %f", second.Cost, first.Cost)
	}
	if len(second.Queries[0].Rows) != len(first.Queries[0].Rows) {
		t.Fatalf("row count changed across cache hit: %d vs %d",
			len(second.Queries[0].Rows), len(first.Queries[0].Rows))
	}
	st := opt.ResultCacheStats()
	if st.Admissions == 0 || st.Hits == 0 || st.HitBatches == 0 {
		t.Errorf("stats did not record the hit: %+v", st)
	}
	if st.UsedBytes <= 0 || st.UsedBytes > st.BudgetBytes {
		t.Errorf("byte accounting out of range: %+v", st)
	}

	// Re-configuring the session's cache with a different budget resizes
	// the existing store rather than silently keeping the old budget.
	if err := opt.ensureResultCache(8<<20, 0); err != nil {
		t.Fatal(err)
	}
	if got := opt.ResultCache().Budget(); got != 8<<20 {
		t.Errorf("budget not resized: %d", got)
	}

	// WithResultCache without a database must fail at Open.
	if _, err := Open(tpcd.Catalog(sf), WithResultCache(1<<20, 0)); err == nil {
		t.Error("WithResultCache without WithDB should fail")
	}
}
