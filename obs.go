package mqo

import "mqo/internal/obs"

// Serving-phase latency histograms on the default registry: one series per
// phase of the Submit path. Parse and lower are observed per query (they
// happen before batching); optimize, execute and spool once per batch.
// BatchInfo.Phases carries the same breakdown per answer, and GET /stats
// reports the cumulative per-phase seconds.
var (
	phaseParse    = obs.Default().Histogram("mqo_batch_phase_seconds", "Serving-phase latency in seconds.", obs.L("phase", "parse"))
	phaseLower    = obs.Default().Histogram("mqo_batch_phase_seconds", "Serving-phase latency in seconds.", obs.L("phase", "lower"))
	phaseOptimize = obs.Default().Histogram("mqo_batch_phase_seconds", "Serving-phase latency in seconds.", obs.L("phase", "optimize"))
	phaseExecute  = obs.Default().Histogram("mqo_batch_phase_seconds", "Serving-phase latency in seconds.", obs.L("phase", "execute"))
	phaseSpool    = obs.Default().Histogram("mqo_batch_phase_seconds", "Serving-phase latency in seconds.", obs.L("phase", "spool"))
)

// phaseSecondsSnapshot reports the cumulative seconds spent per serving
// phase (the GET /stats "phase_seconds" object), sourced from the registry
// histograms.
func phaseSecondsSnapshot() map[string]float64 {
	return map[string]float64{
		"parse":    phaseParse.Sum(),
		"lower":    phaseLower.Sum(),
		"optimize": phaseOptimize.Sum(),
		"execute":  phaseExecute.Sum(),
		"spool":    phaseSpool.Sum(),
	}
}
