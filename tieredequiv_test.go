package mqo

import (
	"context"
	"testing"

	"mqo/internal/tpcd"
)

// TestTieredEquivalenceWarmUnused is the tiering no-op guarantee: when the
// RAM budget comfortably holds the working set, enabling the warm tier must
// change nothing — plan strings byte-identical, rows identical, and the
// warm tier's counters all zero (no demotion, no warm hit, no promotion,
// no spill directory activity). Tiering may only ever kick in when RAM
// pressure would otherwise have dropped entries.
func TestTieredEquivalenceWarmUnused(t *testing.T) {
	const sf = 0.002
	sequence := []string{sqlRevenue, sqlCounts, sqlBatch}
	ctx := context.Background()

	run := func(warm int64) ([]string, [][]Row, *Optimizer) {
		t.Helper()
		db := NewDB(1024)
		if err := tpcd.LoadDB(db, sf, 1); err != nil {
			t.Fatal(err)
		}
		opt, err := Open(tpcd.Catalog(sf), WithDB(db), WithResultCache(16<<20, warm))
		if err != nil {
			t.Fatal(err)
		}
		var plans []string
		var rows [][]Row
		for pass := 0; pass < 2; pass++ {
			for _, sql := range sequence {
				res, err := opt.Run(ctx, Batch{SQL: sql, Algorithm: Greedy})
				if err != nil {
					t.Fatal(err)
				}
				plans = append(plans, res.Plan.String())
				var rr []Row
				for _, qr := range res.Queries {
					rr = append(rr, qr.Rows...)
				}
				rows = append(rows, rr)
			}
		}
		return plans, rows, opt
	}

	plansOff, rowsOff, optOff := run(0)
	plansOn, rowsOn, optOn := run(16 << 20)
	defer optOff.Close()
	defer optOn.Close()

	if len(plansOn) != len(plansOff) {
		t.Fatalf("plan count diverged: %d tiered vs %d untiered", len(plansOn), len(plansOff))
	}
	for i := range plansOff {
		if plansOn[i] != plansOff[i] {
			t.Errorf("batch %d plan diverged under an unused warm tier:\ntiered:\n%s\nuntiered:\n%s",
				i, plansOn[i], plansOff[i])
		}
	}
	for bi := range rowsOff {
		if len(rowsOn[bi]) != len(rowsOff[bi]) {
			t.Fatalf("batch %d: %d rows tiered vs %d untiered", bi, len(rowsOn[bi]), len(rowsOff[bi]))
		}
		for ri := range rowsOff[bi] {
			for ci := range rowsOff[bi][ri] {
				if rowsOn[bi][ri][ci].String() != rowsOff[bi][ri][ci].String() {
					t.Fatalf("batch %d row %d col %d: %v tiered vs %v untiered",
						bi, ri, ci, rowsOn[bi][ri][ci], rowsOff[bi][ri][ci])
				}
			}
		}
	}

	st := optOn.ResultCacheStats()
	if st.Hits == 0 {
		t.Error("replay never hit the cache; the equivalence would be vacuous")
	}
	if st.Demotions != 0 || st.Promotions != 0 || st.WarmHits != 0 ||
		st.WarmEntries != 0 || st.WarmUsedBytes != 0 {
		t.Errorf("warm tier used despite ample RAM: %+v", st)
	}
	if n := optOn.DB().NumWarm(); n != 0 {
		t.Errorf("%d warm tables exist despite ample RAM", n)
	}
}
