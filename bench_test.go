// Benchmarks regenerating every table and figure of the paper's evaluation
// (§6). Each benchmark runs the corresponding experiment from
// internal/bench and reports the headline quantities as custom metrics, so
// `go test -bench=. -benchmem` reproduces the paper's study end to end.
package mqo_test

import (
	"strings"
	"testing"

	"mqo/internal/bench"
)

// metricName builds a benchmark metric unit with no whitespace.
func metricName(parts ...string) string {
	joined := strings.Join(parts, "_")
	joined = strings.ReplaceAll(joined, " ", "")
	return strings.ReplaceAll(joined, "%", "pct")
}

// reportCells publishes per-algorithm plan costs as benchmark metrics.
func reportCells(b *testing.B, e *bench.Experiment) {
	b.Helper()
	for _, row := range e.Rows {
		for _, c := range row.Cells {
			b.ReportMetric(c.Cost, metricName(row.Label, c.Alg.String(), "cost_s"))
		}
	}
}

func runExperiment(b *testing.B, f func() (*bench.Experiment, error)) *bench.Experiment {
	b.Helper()
	var e *bench.Experiment
	var err error
	for i := 0; i < b.N; i++ {
		e, err = f()
		if err != nil {
			b.Fatal(err)
		}
	}
	return e
}

// BenchmarkFigure6 regenerates Figure 6: stand-alone TPC-D queries Q2,
// Q2-D, Q11, Q15 — estimated cost and optimization time per algorithm.
func BenchmarkFigure6(b *testing.B) {
	e := runExperiment(b, bench.Figure6)
	reportCells(b, e)
}

// BenchmarkQ2NotIn regenerates the §6.1 "not in" variant of Q2 (paper:
// ≈9× improvement for Greedy over Volcano).
func BenchmarkQ2NotIn(b *testing.B) {
	e := runExperiment(b, bench.Q2NotIn)
	reportCells(b, e)
	b.ReportMetric(e.Rows[0].Cells[0].Cost/e.Rows[0].Cells[3].Cost, "improvement_x")
}

// BenchmarkFigure7 regenerates the Figure 7 substitute: actual execution of
// the stand-alone queries on the built-in engine, No-MQO vs MQO.
func BenchmarkFigure7(b *testing.B) {
	e := runExperiment(b, bench.Figure7)
	for _, row := range e.Rows {
		b.ReportMetric(row.Extra["NoMQO_sim_s"], metricName(row.Label, "NoMQO_sim_s"))
		b.ReportMetric(row.Extra["MQO_sim_s"], metricName(row.Label, "MQO_sim_s"))
	}
}

// BenchmarkFigure8 regenerates Figure 8: batched TPC-D queries BQ1..BQ5.
func BenchmarkFigure8(b *testing.B) {
	e := runExperiment(b, bench.Figure8)
	reportCells(b, e)
}

// BenchmarkFigure9 regenerates Figure 9: PSP scaleup queries CQ1..CQ5.
func BenchmarkFigure9(b *testing.B) {
	e := runExperiment(b, bench.Figure9)
	reportCells(b, e)
}

// BenchmarkFigure10 regenerates Figure 10: greedy cost propagations and
// cost recomputations across CQ1..CQ5.
func BenchmarkFigure10(b *testing.B) {
	e := runExperiment(b, bench.Figure10)
	for _, row := range e.Rows {
		b.ReportMetric(row.Extra["cost_propagations"], metricName(row.Label, "propagations"))
		b.ReportMetric(row.Extra["cost_recomputations"], metricName(row.Label, "recomputations"))
	}
}

// BenchmarkAblationMonotonicity regenerates the §6.3 monotonicity
// experiment (benefit recomputations with vs without the heuristic).
func BenchmarkAblationMonotonicity(b *testing.B) {
	e := runExperiment(b, func() (*bench.Experiment, error) { return bench.AblationMonotonicity(3) })
	for _, row := range e.Rows {
		b.ReportMetric(row.Extra["with_benefit_recomps"], metricName(row.Label, "with"))
		b.ReportMetric(row.Extra["without_benefit_recomps"], metricName(row.Label, "without"))
	}
}

// BenchmarkAblationSharability regenerates the §6.3 sharability experiment.
func BenchmarkAblationSharability(b *testing.B) {
	e := runExperiment(b, func() (*bench.Experiment, error) { return bench.AblationSharability(3) })
	for _, row := range e.Rows {
		b.ReportMetric(row.Extra["with_candidates"], metricName(row.Label, "with_candidates"))
		b.ReportMetric(row.Extra["without_candidates"], metricName(row.Label, "without_candidates"))
	}
}

// BenchmarkNoSharingOverhead regenerates the §6.4 no-overlap overhead
// experiment (paper: ~25% Greedy overhead; sharability terminates greedy
// immediately).
func BenchmarkNoSharingOverhead(b *testing.B) {
	e := runExperiment(b, bench.NoSharingOverhead)
	b.ReportMetric(e.Rows[0].Extra["overhead_pct"], "overhead_pct")
}

// BenchmarkMemorySensitivity regenerates the §6.4 memory check (6/32/128
// MB per operator).
func BenchmarkMemorySensitivity(b *testing.B) {
	e := runExperiment(b, bench.MemorySensitivity)
	for _, row := range e.Rows {
		b.ReportMetric(row.Extra["greedy_over_volcano"], metricName(row.Label, "greedy_over_volcano"))
	}
}

// BenchmarkScaleSensitivity regenerates the §6.4 data-scale check (BQ5 at
// SF 1 vs SF 100 statistics).
func BenchmarkScaleSensitivity(b *testing.B) {
	e := runExperiment(b, bench.ScaleSensitivity)
	for _, row := range e.Rows {
		b.ReportMetric(row.Extra["benefit_s"], metricName(row.Label, "benefit_s"))
	}
}

// BenchmarkSpaceBudget exercises the §8 space-constrained greedy extension:
// plan cost as the materialization budget grows.
func BenchmarkSpaceBudget(b *testing.B) {
	e := runExperiment(b, bench.SpaceBudgetCurve)
	for _, row := range e.Rows {
		b.ReportMetric(row.Cells[0].Cost, metricName(row.Label, "cost_s"))
	}
}
